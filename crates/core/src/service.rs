//! Serving-layer building blocks: a deterministic result cache and a
//! setpoint-driven batch admission controller.
//!
//! The gate-by-gate engine's determinism contract makes simulation
//! results *cacheable*: a seeded run is a pure function of
//! `(circuit, backend, options, seed, repetitions)`, so a service
//! fielding heavy traffic can answer a repeated request from memory with
//! a bit-identical result. [`ResultCache`] is that memo table, keyed by
//! [`CacheKey`] and bounded by FIFO eviction.
//!
//! [`BatchController`] governs how many queued requests a service drains
//! per batch. Instead of a fixed constant it runs a small PI control
//! loop on the observed per-batch service latency — the batch size is a
//! *setpoint-tracking knob*: batches that finish faster than the target
//! latency grow the next batch (better amortization of fan-out
//! overhead), slow batches shrink it (bounded queue delay for the
//! requests behind them). The controller is deterministic given its
//! observation sequence, clamps to a configured range, and holds inside
//! a deadband so it does not dither.

use crate::results::RunResult;
use bgls_linalg::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key of one deterministic simulation request.
///
/// `circuit` is a structural circuit fingerprint
/// (`bgls_circuit::Circuit::structural_hash`) of the *resolved* circuit;
/// `backend` a fingerprint of the backend name plus any
/// result-affecting options; `seed` the exact seed the run executes
/// under (unseeded requests are not cacheable — their results are not
/// reproducible); `repetitions` the shot count; `deliverable` a
/// fingerprint of what is requested (histogram, or which observable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural hash of the resolved circuit.
    pub circuit: u64,
    /// Fingerprint of the backend and result-affecting options.
    pub backend: u64,
    /// The seed the run executes under.
    pub seed: u64,
    /// Requested repetitions.
    pub repetitions: u64,
    /// Fingerprint of the requested deliverable (0 for a plain
    /// histogram; observable hash for an expectation).
    pub deliverable: u64,
}

/// Hit/miss counters of a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded FIFO memo table for deterministic simulation results.
///
/// Values are shared via `Arc`, so serving a hit never copies the
/// histogram payload. Capacity 0 disables the cache entirely (every
/// lookup misses, nothing is stored) — the switch the throughput bench
/// uses to measure the cache's effect.
#[derive(Clone, Debug)]
pub struct ResultCache<V = RunResult> {
    map: FxHashMap<CacheKey, Arc<V>>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    stats: CacheStats,
}

impl<V> ResultCache<V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, counting the hit or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<V>> {
        match self.map.get(key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the oldest entries beyond
    /// capacity. Re-inserting an existing key replaces the value without
    /// refreshing its eviction position (results are deterministic, so
    /// the replacement is bit-identical anyway).
    pub fn insert(&mut self, key: CacheKey, value: Arc<V>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Retry budget and exponential-backoff schedule for failed jobs.
///
/// The schedule is a pure function of the attempt index, so a service
/// replaying the same workload against a [`crate::ManualClock`] produces
/// the same re-admission times bit-for-bit. `max_retries` bounds the
/// retries *per degradation rung*: a job that exhausts the budget on one
/// plan falls down the degradation ladder with a fresh budget rather
/// than failing outright.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per degradation rung (0 disables retry — first
    /// failure degrades or fails).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied per further retry (clamped to >= 1).
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff window, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 1,
            backoff_multiplier: 2.0,
            max_backoff_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// Whether a job that has already consumed `retries_on_rung` retries
    /// on its current plan may retry again.
    pub fn should_retry(&self, retries_on_rung: u32) -> bool {
        retries_on_rung < self.max_retries
    }

    /// The backoff window before retry number `retry` (0-based), in
    /// milliseconds: `base * multiplier^retry`, capped at
    /// `max_backoff_ms`.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let mult = self.backoff_multiplier.max(1.0);
        let exp = mult.powi(retry.min(63) as i32);
        let window = (self.base_backoff_ms as f64 * exp).min(self.max_backoff_ms as f64);
        window as u64
    }
}

/// Configuration of the [`BatchController`]: the latency setpoint and
/// the PI gains (in the spirit of a Shannon-style control unit — steer a
/// knob to hold a target signal instead of hard-coding the knob).
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Smallest batch the controller will issue.
    pub min_batch: usize,
    /// Largest batch the controller will issue.
    pub max_batch: usize,
    /// Target wall-clock per drained batch, in milliseconds. The
    /// controller grows the batch while batches finish under the target
    /// and shrinks it when they overrun.
    pub target_batch_ms: f64,
    /// Proportional gain on the relative latency error.
    pub kp: f64,
    /// Integral gain on the accumulated relative error.
    pub ki: f64,
    /// Relative deadband: errors smaller than this fraction of the
    /// setpoint leave the batch size untouched (no dithering).
    pub deadband: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            min_batch: 1,
            max_batch: 64,
            target_batch_ms: 50.0,
            kp: 0.5,
            ki: 0.1,
            deadband: 0.1,
        }
    }
}

/// PI controller steering the per-drain batch size toward the policy's
/// latency setpoint. Feed it each drained batch's size and elapsed time
/// via [`BatchController::observe`]; read the next batch size with
/// [`BatchController::batch_size`].
#[derive(Clone, Debug)]
pub struct BatchController {
    policy: BatchPolicy,
    current: f64,
    integral: f64,
}

impl BatchController {
    /// A controller starting at the policy's midpoint batch size.
    pub fn new(policy: BatchPolicy) -> Self {
        let start = ((policy.min_batch + policy.max_batch) / 2).max(policy.min_batch);
        BatchController {
            policy,
            current: start as f64,
            integral: 0.0,
        }
    }

    /// The batch size to drain next.
    pub fn batch_size(&self) -> usize {
        (self.current.round() as usize).clamp(self.policy.min_batch, self.policy.max_batch)
    }

    /// The configured policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Records one drained batch: `jobs` requests served in `elapsed_ms`
    /// wall-clock milliseconds. The controller compares the *projected*
    /// latency of the current batch size (per-job latency times current
    /// size) against the setpoint and applies a PI update on the
    /// relative error, clamped to the policy's range.
    pub fn observe(&mut self, jobs: usize, elapsed_ms: f64) {
        if jobs == 0 || !elapsed_ms.is_finite() || elapsed_ms < 0.0 {
            return;
        }
        let per_job_ms = (elapsed_ms / jobs as f64).max(1e-6);
        let projected = per_job_ms * self.current;
        // positive error = headroom below the setpoint -> grow
        let error = (self.policy.target_batch_ms - projected) / self.policy.target_batch_ms;
        if error.abs() <= self.policy.deadband {
            return;
        }
        // Anti-windup by conditional integration: when the actuator is
        // pinned at a clamp and the error pushes further into it, the
        // integral term would only accumulate charge that has to be
        // unwound before the controller can react to a reversal. Skip
        // integration in that case so recovery from saturation is
        // immediate.
        let pinned_high = self.current >= self.policy.max_batch as f64 && error > 0.0;
        let pinned_low = self.current <= self.policy.min_batch as f64 && error < 0.0;
        if !pinned_high && !pinned_low {
            self.integral = (self.integral + error).clamp(-10.0, 10.0);
        }
        let adjust = self.policy.kp * error + self.policy.ki * self.integral;
        // multiplicative actuation keeps the step proportional to the
        // current operating point across the decades between min and max
        self.current = (self.current * (1.0 + adjust))
            .clamp(self.policy.min_batch as f64, self.policy.max_batch as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            circuit: i,
            backend: 1,
            seed: 2,
            repetitions: 100,
            deliverable: 0,
        }
    }

    #[test]
    fn cache_hits_return_the_stored_value() {
        let mut cache: ResultCache<u64> = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::new(42));
        assert_eq!(*cache.get(&key(1)).unwrap(), 42);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_distinguishes_every_key_component() {
        let base = key(1);
        let mut variants = vec![base];
        variants.push(CacheKey { circuit: 9, ..base });
        variants.push(CacheKey { backend: 9, ..base });
        variants.push(CacheKey { seed: 9, ..base });
        variants.push(CacheKey {
            repetitions: 9,
            ..base
        });
        variants.push(CacheKey {
            deliverable: 9,
            ..base
        });
        let mut cache: ResultCache<usize> = ResultCache::new(16);
        for (i, k) in variants.iter().enumerate() {
            cache.insert(*k, Arc::new(i));
        }
        for (i, k) in variants.iter().enumerate() {
            assert_eq!(*cache.get(k).unwrap(), i);
        }
    }

    #[test]
    fn cache_evicts_fifo_beyond_capacity() {
        let mut cache: ResultCache<u64> = ResultCache::new(2);
        cache.insert(key(1), Arc::new(1));
        cache.insert(key(2), Arc::new(2));
        cache.insert(key(3), Arc::new(3));
        assert!(cache.get(&key(1)).is_none(), "oldest entry evicted");
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_follows_insertion_order_not_access_order() {
        // The cache is FIFO by design (deterministic results make
        // recency worthless for correctness): a recent hit must not
        // rescue an entry from eviction.
        let mut cache: ResultCache<u64> = ResultCache::new(2);
        cache.insert(key(1), Arc::new(1));
        cache.insert(key(2), Arc::new(2));
        assert!(cache.get(&key(1)).is_some(), "touch the oldest entry");
        cache.insert(key(3), Arc::new(3));
        assert!(
            cache.get(&key(1)).is_none(),
            "FIFO evicts the oldest insertion even if it was just read"
        );
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinsertion_keeps_the_original_eviction_position() {
        let mut cache: ResultCache<u64> = ResultCache::new(2);
        cache.insert(key(1), Arc::new(10));
        cache.insert(key(2), Arc::new(20));
        // replace key(1)'s value: position in the eviction queue must
        // not refresh, and no phantom order entry may accumulate
        cache.insert(key(1), Arc::new(11));
        assert_eq!(*cache.get(&key(1)).unwrap(), 11, "value replaced");
        cache.insert(key(3), Arc::new(30));
        assert!(
            cache.get(&key(1)).is_none(),
            "reinserted key evicts at its original position"
        );
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache: ResultCache<u64> = ResultCache::new(0);
        cache.insert(key(1), Arc::new(1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1)).is_none());
    }

    #[test]
    fn controller_grows_on_fast_batches_and_shrinks_on_slow() {
        let policy = BatchPolicy {
            min_batch: 1,
            max_batch: 64,
            target_batch_ms: 50.0,
            ..Default::default()
        };
        let mut c = BatchController::new(policy);
        let start = c.batch_size();
        // fast batches: 0.1 ms per job, far under the 50 ms setpoint
        for _ in 0..20 {
            let b = c.batch_size();
            c.observe(b, 0.1 * b as f64);
        }
        assert!(c.batch_size() > start, "headroom must grow the batch");
        // slow batches: 10 ms per job drives the projected latency over
        for _ in 0..30 {
            let b = c.batch_size();
            c.observe(b, 10.0 * b as f64);
        }
        assert!(c.batch_size() < 64, "overrun must shrink the batch");
        assert!(c.batch_size() >= policy.min_batch);
    }

    #[test]
    fn controller_clamps_and_ignores_degenerate_observations() {
        let policy = BatchPolicy {
            min_batch: 2,
            max_batch: 8,
            ..Default::default()
        };
        let mut c = BatchController::new(policy);
        for _ in 0..100 {
            c.observe(4, 0.0001); // extremely fast -> push to max
        }
        assert_eq!(c.batch_size(), 8);
        c.observe(0, 1.0); // no-op
        c.observe(4, f64::NAN); // no-op
        c.observe(4, -1.0); // no-op
        assert_eq!(c.batch_size(), 8);
        for _ in 0..200 {
            c.observe(4, 1e6); // extremely slow -> push to min
        }
        assert_eq!(c.batch_size(), 2);
    }

    #[test]
    fn anti_windup_releases_the_max_clamp_promptly() {
        let policy = BatchPolicy {
            min_batch: 1,
            max_batch: 8,
            target_batch_ms: 50.0,
            ..Default::default()
        };
        let mut c = BatchController::new(policy);
        // saturate high: ~unit positive error per observation, held at
        // the max clamp for many observations
        for _ in 0..50 {
            let b = c.batch_size();
            c.observe(b, 0.001 * b as f64);
        }
        assert_eq!(c.batch_size(), 8, "fast batches pin the max clamp");
        // moderate reversal: projected latency 2x the setpoint. Without
        // conditional integration the wound-up integral holds the
        // controller at the clamp for many observations; with it the
        // first reversal observations already move the batch size.
        for _ in 0..3 {
            c.observe(8, 100.0);
        }
        assert!(
            c.batch_size() < 8,
            "controller must unpin from the max clamp within 3 reversal observations"
        );
    }

    #[test]
    fn anti_windup_releases_the_min_clamp_promptly() {
        let policy = BatchPolicy {
            min_batch: 2,
            max_batch: 8,
            target_batch_ms: 50.0,
            ..Default::default()
        };
        let mut c = BatchController::new(policy);
        // saturate low with a persistent moderate overload (30 ms per
        // job keeps the projected latency above target even at min)
        for _ in 0..50 {
            let b = c.batch_size();
            c.observe(b, 30.0 * b as f64);
        }
        assert_eq!(c.batch_size(), 2, "slow batches pin the min clamp");
        // reversal: essentially free batches
        for _ in 0..3 {
            let b = c.batch_size();
            c.observe(b, 0.001 * b as f64);
        }
        assert!(
            c.batch_size() > 2,
            "controller must unpin from the min clamp within 3 reversal observations"
        );
    }

    #[test]
    fn retry_backoff_schedule_is_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 2,
            backoff_multiplier: 2.0,
            max_backoff_ms: 10,
        };
        assert_eq!(policy.backoff_ms(0), 2);
        assert_eq!(policy.backoff_ms(1), 4);
        assert_eq!(policy.backoff_ms(2), 8);
        assert_eq!(policy.backoff_ms(3), 10, "capped at max_backoff_ms");
        assert_eq!(policy.backoff_ms(40), 10);
        assert!(policy.should_retry(0));
        assert!(policy.should_retry(2));
        assert!(!policy.should_retry(3));
        // a sub-unit multiplier must not shrink the window
        let decay = RetryPolicy {
            backoff_multiplier: 0.5,
            base_backoff_ms: 4,
            ..policy
        };
        assert_eq!(decay.backoff_ms(5), 4);
    }

    #[test]
    fn controller_holds_inside_the_deadband() {
        let policy = BatchPolicy::default();
        let mut c = BatchController::new(policy);
        let b = c.batch_size();
        // exactly on target: projected latency == setpoint
        let per_job = policy.target_batch_ms / b as f64;
        for _ in 0..10 {
            c.observe(b, per_job * b as f64);
        }
        assert_eq!(c.batch_size(), b, "on-target observations must hold");
    }
}

//! Deadline clock abstraction for the serving layer.
//!
//! The fault-tolerant service needs a notion of "now" for deadlines and
//! retry backoff, and a way to wait for a backoff window to pass. Both
//! must be swappable: production uses a monotonic wall clock, while the
//! chaos tests drive a [`ManualClock`] so deadline misses and backoff
//! schedules are reproducible bit-for-bit.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A millisecond clock the serving layer schedules against.
///
/// `now_ms` is monotone non-decreasing. `sleep_ms` blocks (or, for a
/// manual clock, advances time) for at least the requested window —
/// callers use it to wait out retry backoff without busy-spinning.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> u64;
    /// Waits for `ms` milliseconds of clock time to pass.
    fn sleep_ms(&self, ms: u64);
}

/// Wall-clock [`Clock`] anchored at construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// A hand-cranked [`Clock`] for deterministic tests.
///
/// `now_ms` reads an atomic counter; `sleep_ms` *advances* it, so a
/// service waiting out a retry backoff makes progress without real time
/// passing — the whole schedule becomes a pure function of the workload.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0 ms.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A shared handle starting at 0 ms.
    pub fn shared() -> Arc<Self> {
        Arc::new(ManualClock::new())
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_on_sleep() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.sleep_ms(25);
        clock.advance_ms(5);
        assert_eq!(clock.now_ms(), 30);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}

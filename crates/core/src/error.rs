//! Simulation errors.

use bgls_circuit::CircuitError;
use std::fmt;

/// Errors raised by the BGLS simulator and state backends.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The state representation cannot perform the requested operation
    /// (e.g. Kraus channels on a stabilizer state).
    Unsupported(String),
    /// A circuit-level error (arity, parameters, ...).
    Circuit(CircuitError),
    /// The circuit contains no measurement, but `run` was called.
    NoMeasurements,
    /// A gate was applied that is not Clifford while simulating with a
    /// stabilizer state (and no near-Clifford channel is in use).
    NotClifford(String),
    /// Every candidate bitstring had zero probability — the state and
    /// bitstring have diverged (indicates a backend bug or a non-unitary
    /// operation applied without renormalization).
    ZeroProbabilityEvent,
    /// Qubit index out of range for the state.
    QubitOutOfRange {
        /// Offending index.
        index: usize,
        /// State size.
        num_qubits: usize,
    },
    /// Invalid argument.
    Invalid(String),
    /// A worker caught a panic while executing this job. The panic is
    /// isolated to the job: the worker and every other batch member keep
    /// running, and the payload message is preserved here.
    WorkerPanic(String),
    /// The job's deadline elapsed before it could be served. Deadlines
    /// are checked at batch boundaries, so a miss is reported the next
    /// time the job would have been drained.
    DeadlineExceeded {
        /// The deadline budget the job was submitted with, in
        /// milliseconds.
        budget_ms: u64,
    },
    /// The job was cancelled by the caller before it executed.
    Cancelled,
    /// A resource budget was exhausted mid-run (e.g. the weighted
    /// expectation frontier outgrew `max_forest_nodes`). The serving
    /// layer treats this as an immediate degradation trigger rather than
    /// a retryable fault — retrying the same plan exhausts the same
    /// budget.
    BudgetExhausted(String),
    /// The backend aborted mid-run through the fallible-op hook
    /// ([`crate::Simulator::with_fallible_ops`]).
    Faulted(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unsupported(what) => write!(f, "unsupported by this state type: {what}"),
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::NoMeasurements => {
                write!(f, "circuit has no measurements; add a terminal measurement or use sample_final_bitstrings")
            }
            SimError::NotClifford(g) => {
                write!(
                    f,
                    "gate {g} is not Clifford; use the near-Clifford apply hook"
                )
            }
            SimError::ZeroProbabilityEvent => {
                write!(f, "all candidate bitstrings have zero probability")
            }
            SimError::QubitOutOfRange { index, num_qubits } => {
                write!(
                    f,
                    "qubit index {index} out of range for {num_qubits}-qubit state"
                )
            }
            SimError::Invalid(msg) => write!(f, "{msg}"),
            SimError::WorkerPanic(msg) => write!(f, "worker caught a panic: {msg}"),
            SimError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded (budget {budget_ms} ms)")
            }
            SimError::Cancelled => write!(f, "cancelled by the caller"),
            SimError::BudgetExhausted(msg) => write!(f, "budget exhausted: {msg}"),
            SimError::Faulted(msg) => write!(f, "backend fault: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

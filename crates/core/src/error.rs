//! Simulation errors.

use bgls_circuit::CircuitError;
use std::fmt;

/// Errors raised by the BGLS simulator and state backends.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The state representation cannot perform the requested operation
    /// (e.g. Kraus channels on a stabilizer state).
    Unsupported(String),
    /// A circuit-level error (arity, parameters, ...).
    Circuit(CircuitError),
    /// The circuit contains no measurement, but `run` was called.
    NoMeasurements,
    /// A gate was applied that is not Clifford while simulating with a
    /// stabilizer state (and no near-Clifford channel is in use).
    NotClifford(String),
    /// Every candidate bitstring had zero probability — the state and
    /// bitstring have diverged (indicates a backend bug or a non-unitary
    /// operation applied without renormalization).
    ZeroProbabilityEvent,
    /// Qubit index out of range for the state.
    QubitOutOfRange {
        /// Offending index.
        index: usize,
        /// State size.
        num_qubits: usize,
    },
    /// Invalid argument.
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unsupported(what) => write!(f, "unsupported by this state type: {what}"),
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::NoMeasurements => {
                write!(f, "circuit has no measurements; add a terminal measurement or use sample_final_bitstrings")
            }
            SimError::NotClifford(g) => {
                write!(
                    f,
                    "gate {g} is not Clifford; use the near-Clifford apply hook"
                )
            }
            SimError::ZeroProbabilityEvent => {
                write!(f, "all candidate bitstrings have zero probability")
            }
            SimError::QubitOutOfRange { index, num_qubits } => {
                write!(
                    f,
                    "qubit index {index} out of range for {num_qubits}-qubit state"
                )
            }
            SimError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

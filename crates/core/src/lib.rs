//! # bgls-core
//!
//! The gate-by-gate sampling simulator of Bravyi, Gosset & Liu (PRL 128,
//! 220503), as packaged by the BGLS paper (SC-W 2023). State-representation
//! agnostic: plug in any [`BglsState`] backend, or supply the paper's raw
//! `(initial_state, apply_op, compute_probability)` triple via
//! [`Simulator::with_hooks`].
//!
//! ```
//! use bgls_core::{Simulator, BglsState};
//! // (see bgls-statevector / bgls-stabilizer / bgls-mps for backends)
//! ```
//!
//! Key pieces:
//! * [`Simulator`] — gate-by-gate sampling with automatic sample
//!   parallelization (paper Sec. 3.2.3) and quantum trajectories for
//!   non-unitary operations (Sec. 3.2.1);
//! * [`QubitByQubitSimulator`] — the conventional marginal-based baseline
//!   (Sec. 2);
//! * [`BitString`], [`RunResult`], [`Histogram`] — sampling I/O.

#![warn(missing_docs)]

mod baseline;
mod bitstring;
mod clock;
mod error;
mod results;
mod service;
mod simulator;
mod state;

pub use baseline::QubitByQubitSimulator;
pub use bitstring::BitString;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use error::SimError;
pub use results::{ExpectationEstimate, Histogram, RunResult};
pub use service::{BatchController, BatchPolicy, CacheKey, CacheStats, ResultCache, RetryPolicy};
pub use simulator::{
    categorical, multinomial_split, stream_seed, ApplyFn, BatchProbFn, OpFaultFn, ProbFn,
    Simulator, SimulatorOptions,
};
pub use state::{AmplitudeState, BglsState, MarginalState};

//! The conventional qubit-by-qubit sampler (paper Sec. 2) — the baseline
//! the gate-by-gate algorithm is compared against.
//!
//! It first evolves the full circuit, then samples each qubit sequentially
//! from its marginal distribution conditioned on earlier outcomes. Each
//! sample costs `n` marginal evaluations of the *final* state; marginals
//! cost roughly a `f(n, 2d)` bitstring-probability equivalent, which is the
//! source of the gate-by-gate advantage quoted in Sec. 2.

use crate::bitstring::BitString;
use crate::error::SimError;
use crate::results::RunResult;
use crate::state::MarginalState;
use bgls_circuit::{Circuit, OpKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Qubit-by-qubit sampler over any [`MarginalState`] backend.
pub struct QubitByQubitSimulator<S: MarginalState> {
    initial_state: S,
    seed: Option<u64>,
}

impl<S: MarginalState> QubitByQubitSimulator<S> {
    /// Builds the sampler with the given initial state.
    pub fn new(initial_state: S) -> Self {
        QubitByQubitSimulator {
            initial_state,
            seed: None,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    fn make_rng(&self) -> StdRng {
        match self.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        }
    }

    /// Evolves the full circuit (gates only — channels are not supported by
    /// the conventional path here, and measurements are skipped).
    fn evolve(&self, circuit: &Circuit) -> Result<S, SimError> {
        let mut state = self.initial_state.clone();
        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    state.apply_gate(g, &qs)?;
                }
                OpKind::Measure { .. } => {}
                OpKind::Channel(c) => {
                    return Err(SimError::Unsupported(format!(
                        "channel {} in the qubit-by-qubit baseline",
                        c.name()
                    )));
                }
            }
        }
        Ok(state)
    }

    /// Samples one bitstring from an evolved state by sequential
    /// conditional marginals.
    fn sample_one(&self, state: &S, rng: &mut StdRng) -> Result<BitString, SimError> {
        let n = state.num_qubits();
        let mut assignment: Vec<(usize, bool)> = Vec::with_capacity(n);
        let mut prefix_prob = 1.0f64;
        for q in 0..n {
            assignment.push((q, true));
            let p1_joint = state.marginal_probability(&assignment);
            assignment.pop();
            if prefix_prob.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(SimError::ZeroProbabilityEvent);
            }
            let p1 = (p1_joint / prefix_prob).clamp(0.0, 1.0);
            let bit = rng.gen::<f64>() < p1;
            assignment.push((q, bit));
            prefix_prob = if bit {
                p1_joint
            } else {
                prefix_prob - p1_joint
            };
        }
        Ok(BitString::from_bits(assignment.into_iter().map(|(_, b)| b)))
    }

    /// Samples `repetitions` final-state bitstrings (measurements ignored),
    /// mirroring [`crate::Simulator::sample_final_bitstrings`].
    pub fn sample_final_bitstrings(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<Vec<BitString>, SimError> {
        let state = self.evolve(circuit)?;
        let mut rng = self.make_rng();
        (0..repetitions)
            .map(|_| self.sample_one(&state, &mut rng))
            .collect()
    }

    /// Runs the circuit, recording terminal measurements — the conventional
    /// counterpart of [`crate::Simulator::run`].
    pub fn run(&self, circuit: &Circuit, repetitions: u64) -> Result<RunResult, SimError> {
        if !circuit.has_measurements() {
            return Err(SimError::NoMeasurements);
        }
        if !circuit.measurements_are_terminal() {
            return Err(SimError::Unsupported(
                "mid-circuit measurement in the qubit-by-qubit baseline".into(),
            ));
        }
        let state = self.evolve(circuit)?;
        let mut rng = self.make_rng();
        let mut result = RunResult::new(repetitions);
        let measures: Vec<(&str, Vec<usize>)> = circuit
            .all_operations()
            .filter_map(|op| match &op.kind {
                OpKind::Measure { key } => Some((
                    key.as_ref(),
                    op.support().iter().map(|q| q.index()).collect(),
                )),
                _ => None,
            })
            .collect();
        for _ in 0..repetitions {
            let b = self.sample_one(&state, &mut rng)?;
            for (key, qs) in &measures {
                result.record(key, b.restrict(qs), 1);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::testing::RefState;
    use bgls_circuit::{Gate, Operation, Qubit};

    fn ghz_measured(n: usize) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        for i in 1..n {
            c.push(
                Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).unwrap(),
            );
        }
        c.push(Operation::measure(Qubit::range(n), "z").unwrap());
        c
    }

    #[test]
    fn ghz_correlations_reproduced() {
        let sim = QubitByQubitSimulator::new(RefState::zero(3)).with_seed(5);
        let r = sim.run(&ghz_measured(3), 1000).unwrap();
        let h = r.histogram("z").unwrap();
        assert_eq!(h.count_value(0) + h.count_value(0b111), 1000);
        assert!(h.count_value(0) > 380 && h.count_value(0) < 620);
    }

    #[test]
    fn agrees_with_gate_by_gate_on_biased_state() {
        // Ry rotation giving P(1) = sin^2(0.6/2)
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Ry(0.6.into()), vec![Qubit(0)]).unwrap());
        let qbq = QubitByQubitSimulator::new(RefState::zero(1)).with_seed(9);
        let samples = qbq.sample_final_bitstrings(&c, 20000).unwrap();
        let f1 = samples.iter().filter(|b| b.get(0)).count() as f64 / 20000.0;
        let expect = (0.3f64).sin().powi(2);
        assert!((f1 - expect).abs() < 0.01, "f1={f1} expect={expect}");
    }

    #[test]
    fn channels_unsupported() {
        use bgls_circuit::Channel;
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let sim = QubitByQubitSimulator::new(RefState::zero(1));
        assert!(matches!(sim.run(&c, 1), Err(SimError::Unsupported(_))));
    }

    #[test]
    fn mid_circuit_measurement_unsupported() {
        let mut c = Circuit::new();
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        c.push(Operation::gate(Gate::X, vec![Qubit(0)]).unwrap());
        let sim = QubitByQubitSimulator::new(RefState::zero(1));
        assert!(matches!(sim.run(&c, 1), Err(SimError::Unsupported(_))));
    }

    #[test]
    fn requires_measurement_for_run() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = QubitByQubitSimulator::new(RefState::zero(1));
        assert!(matches!(sim.run(&c, 1), Err(SimError::NoMeasurements)));
    }
}

//! Cache-blocked, register-tiled complex GEMM and matvec — the dense
//! arithmetic floor under the MPS / lazy-tensor-network contraction
//! stack.
//!
//! # Blocking scheme
//!
//! Large multiplies run through a classic three-level scheme:
//!
//! * the K dimension is split into panels of at most [`KC`] terms;
//! * B is packed once up front into *split re/im* panels, [`NR`]
//!   columns wide, so the microkernel streams contiguous `f64` lanes
//!   instead of interleaved complex pairs;
//! * output rows are processed in blocks of [`MC`]; each block packs
//!   its slice of A into [`MR`]-row split panels and walks every K
//!   panel in ascending order.
//!
//! The microkernel holds an `MR x NR` tile of C in registers (split
//! re/im accumulators), loads the tile from memory before the panel and
//! stores it after, so across panels every output element accumulates
//! its `k` terms **in ascending order, one term at a time** — exactly
//! the scalar `C64::mul_add` fold the naive triple loop performs.
//!
//! Multiplies below [`PACK_MIN_FLOPS`] (or too skinny to tile) skip the
//! packing machinery entirely and run the naive fold with a zero-`a`
//! skip, which is the historical `Matrix::matmul` loop verbatim.
//!
//! # Determinism contract
//!
//! For every output element, both the packed and the naive path compute
//!
//! ```text
//! c[i][j] = fold(k ascending) of  a[i][k] * b[k][j] + acc
//! ```
//!
//! with the component expressions of [`C64::mul_add`] (no FMA
//! contraction, no reassociation, no partial sums). Rayon parallelism
//! splits the *output rows* into fixed [`MC`]-row blocks, each owned by
//! exactly one task, so results are bit-identical for every thread
//! count, including fully serial execution. The only divergence from
//! the naive-with-skip fold is the sign of exact zeros (the packed path
//! multiplies structural zeros instead of skipping them), which no
//! downstream consumer observes: probabilities square amplitudes and
//! `-0.0 == 0.0` in every comparison.
//!
//! # Strided panels
//!
//! [`matmul_gather_into`] accepts per-axis offset tables instead of
//! contiguous operands, so `Tensor::contract` feeds permuted tensor
//! panels straight into the packing step without materializing the
//! permutation first. The packing/scratch buffers are reused across
//! calls via [`with_scratch`].

use crate::complex::C64;
use rayon::prelude::*;
use std::cell::RefCell;

/// Register-tile height (rows of A per microkernel).
pub const MR: usize = 2;
/// Register-tile width (columns of B per microkernel).
pub const NR: usize = 32;
/// K-panel depth: terms accumulated per packed panel.
pub const KC: usize = 256;
/// Output-row block: the parallel work grain and A-packing height.
pub const MC: usize = 64;
/// `m * k * n` below which the naive fold beats packing overhead.
pub const PACK_MIN_FLOPS: usize = 4096;
/// `m * k * n` above which row blocks are fanned out across Rayon.
pub const PAR_MIN_FLOPS: usize = 1 << 20;
/// `m * k` above which matvec rows are fanned out across Rayon.
pub const PAR_MIN_MATVEC: usize = 1 << 19;

/// Reusable packing buffers. Obtain one with [`with_scratch`]; the
/// thread-local instance amortizes allocations across calls.
#[derive(Debug, Default)]
pub struct GemmScratch {
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    /// Offset tables for the gather (strided-tensor) entry point.
    pub moff: Vec<usize>,
    /// Shared-axis offsets into the left operand.
    pub a_koff: Vec<usize>,
    /// Shared-axis offsets into the right operand.
    pub b_koff: Vec<usize>,
    /// Free-axis offsets into the right operand.
    pub noff: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
}

/// Runs `f` with the thread-local [`GemmScratch`].
pub fn with_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Row-major `m x k` times `k x n`, freshly allocated output.
pub fn matmul(m: usize, k: usize, n: usize, a: &[C64], b: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; m * n];
    matmul_into(&mut out, m, k, n, a, b);
    out
}

/// Row-major `m x k` times `k x n` into `out` (overwritten).
pub fn matmul_into(out: &mut [C64], m: usize, k: usize, n: usize, a: &[C64], b: &[C64]) {
    matmul_impl(out, m, k, n, a, b, false);
}

/// Row-major `m x k` times `k x n` *accumulated* onto `out`
/// (`out += a * b`). Used where a sum of products folds into one
/// buffer (the MPS transfer-matrix norm).
pub fn matmul_acc_into(out: &mut [C64], m: usize, k: usize, n: usize, a: &[C64], b: &[C64]) {
    matmul_impl(out, m, k, n, a, b, true);
}

fn matmul_impl(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    assert_eq!(out.len(), m * n, "output size mismatch");
    if !use_packed(m, k, n) {
        naive_contiguous(out, m, k, n, a, b, accumulate);
        return;
    }
    with_scratch(|sc| matmul_packed(sc, out, m, k, n, a, b, accumulate));
}

/// The packed path on caller-provided scratch (callers already inside
/// [`with_scratch`] must use this — the thread-local cell is not
/// re-entrant).
#[allow(clippy::too_many_arguments)]
fn matmul_packed(
    sc: &mut GemmScratch,
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    accumulate: bool,
) {
    pack_b_contiguous(sc, k, n, b);
    run_blocked(
        out,
        m,
        k,
        n,
        sc,
        accumulate,
        &|rows, kp0, kc, dst_re, dst_im| pack_a_contiguous(rows, kp0, kc, k, a, dst_re, dst_im),
    );
}

/// GEMM over *gathered* operands: element `(i, kk)` of the left panel
/// lives at `a[moff[i] + a_koff[kk]]`, element `(kk, j)` of the right
/// panel at `b[b_koff[kk] + noff[j]]`. This is how `Tensor::contract`
/// multiplies permuted views without materializing them. The caller
/// provides the scratch so offset tables can be built in place.
#[allow(clippy::too_many_arguments)]
pub fn matmul_gather_into(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    sc: &mut GemmScratch,
) {
    matmul_gather_impl(out, m, k, n, a, b, sc, false)
}

/// [`matmul_gather_into`] accumulating onto `out` instead of
/// overwriting it.
#[allow(clippy::too_many_arguments)]
pub fn matmul_gather_acc_into(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    sc: &mut GemmScratch,
) {
    matmul_gather_impl(out, m, k, n, a, b, sc, true)
}

#[allow(clippy::too_many_arguments)]
fn matmul_gather_impl(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    sc: &mut GemmScratch,
    accumulate: bool,
) {
    assert_eq!(sc.moff.len(), m, "row offset table mismatch");
    assert_eq!(sc.a_koff.len(), k, "lhs shared offset table mismatch");
    assert_eq!(sc.b_koff.len(), k, "rhs shared offset table mismatch");
    assert_eq!(sc.noff.len(), n, "column offset table mismatch");
    assert_eq!(out.len(), m * n, "output size mismatch");
    // Columns contiguous (`noff[j] = j`) is the common case — any
    // contraction whose right operand keeps its free axes trailing —
    // and lets the inner loops run on slices instead of per-element
    // table lookups.
    let b_cols_contiguous = sc.noff.iter().enumerate().all(|(j, &o)| o == j);
    if b_cols_contiguous
        && sc.moff.iter().enumerate().all(|(i, &o)| o == i * k)
        && sc.a_koff.iter().enumerate().all(|(kk, &o)| o == kk)
        && sc.b_koff.iter().enumerate().all(|(kk, &o)| o == kk * n)
    {
        // Fully contiguous: both operands are plain row-major views of
        // (a prefix of) their buffers. Reuse the caller's scratch — the
        // thread-local cell may already be borrowed by this very call.
        let (a, b) = (&a[..m * k], &b[..k * n]);
        if !use_packed(m, k, n) {
            naive_contiguous(out, m, k, n, a, b, accumulate);
        } else {
            matmul_packed(sc, out, m, k, n, a, b, accumulate);
        }
        return;
    }
    if !use_packed(m, k, n) {
        // Naive gather fold — the historical permute-then-matmul result,
        // term for term.
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if !accumulate {
                orow.fill(C64::ZERO);
            }
            for kk in 0..k {
                let av = a[sc.moff[i] + sc.a_koff[kk]];
                if av == C64::ZERO {
                    continue;
                }
                let bbase = sc.b_koff[kk];
                if b_cols_contiguous {
                    let brow = &b[bbase..bbase + n];
                    for (slot, &bv) in orow.iter_mut().zip(brow) {
                        *slot = av.mul_add(bv, *slot);
                    }
                } else {
                    for (j, slot) in orow.iter_mut().enumerate() {
                        *slot = av.mul_add(b[bbase + sc.noff[j]], *slot);
                    }
                }
            }
        }
        return;
    }
    // Move the tables out so the packing closures can borrow `sc`'s
    // panel buffers mutably at the same time.
    let moff = std::mem::take(&mut sc.moff);
    let a_koff = std::mem::take(&mut sc.a_koff);
    let b_koff = std::mem::take(&mut sc.b_koff);
    let noff = std::mem::take(&mut sc.noff);
    pack_b_gather(sc, k, n, b, &b_koff, &noff);
    run_blocked(
        out,
        m,
        k,
        n,
        sc,
        accumulate,
        &|rows, kp0, kc, dst_re, dst_im| {
            pack_a_gather(rows, kp0, kc, a, &moff, &a_koff, dst_re, dst_im)
        },
    );
    sc.moff = moff;
    sc.a_koff = a_koff;
    sc.b_koff = b_koff;
    sc.noff = noff;
}

/// Matrix-vector product `out = A x` for row-major `A` (`m x k`).
///
/// Rows are processed [`MR`] at a time sharing the `x` loads; each
/// row's accumulator folds `j` in ascending order with the
/// [`C64::mul_add`] expressions, so results are bit-identical to the
/// scalar fold for every thread count.
pub fn matvec_into(out: &mut [C64], m: usize, k: usize, a: &[C64], x: &[C64]) {
    assert_eq!(a.len(), m * k, "matrix size mismatch");
    assert_eq!(x.len(), k, "vector size mismatch");
    assert_eq!(out.len(), m, "output size mismatch");
    if m * k >= PAR_MIN_MATVEC && rayon::current_num_threads() > 1 {
        let tasks: Vec<(usize, &mut [C64])> = out
            .chunks_mut(MC)
            .enumerate()
            .map(|(bi, ch)| (bi * MC, ch))
            .collect();
        tasks
            .into_par_iter()
            .for_each(|(row0, ch)| matvec_rows(ch, row0, k, a, x));
    } else {
        matvec_rows(out, 0, k, a, x);
    }
}

fn matvec_rows(out: &mut [C64], row0: usize, k: usize, a: &[C64], x: &[C64]) {
    let mut i = 0;
    while i < out.len() {
        let block = (out.len() - i).min(MR);
        let mut acc = [C64::ZERO; MR];
        for (j, &xv) in x.iter().enumerate() {
            for (r, slot) in acc.iter_mut().enumerate().take(block) {
                let av = a[(row0 + i + r) * k + j];
                *slot = av.mul_add(xv, *slot);
            }
        }
        out[i..i + block].copy_from_slice(&acc[..block]);
        i += block;
    }
}

/// True when the packed/tiled path is worth its setup cost: enough
/// arithmetic to amortize packing, and a deep enough `k` that the
/// packed panels are actually reused (short-`k` products are pure
/// streaming, where the naive contiguous fold already runs at vector
/// speed).
#[inline]
fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m * k * n >= PACK_MIN_FLOPS && m >= MR && n >= NR && k >= 8
}

/// The historical `Matrix::matmul` triple loop (ascending-k fold with a
/// zero-`a` skip), kept as the small-size path.
fn naive_contiguous(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    a: &[C64],
    b: &[C64],
    accumulate: bool,
) {
    if !accumulate {
        out.fill(C64::ZERO);
    }
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == C64::ZERO {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (slot, &bv) in orow.iter_mut().zip(brow) {
                *slot = av.mul_add(bv, *slot);
            }
        }
    }
}

/// Number of K panels and the bounds of panel `p`.
#[inline]
fn panel(k: usize, p: usize) -> (usize, usize) {
    let start = p * KC;
    (start, (k - start).min(KC))
}

/// Packs all of B (`k x n`) into split re/im panels: panel-major, then
/// NR-column blocks, then `kk`, then the NR lane. Columns beyond `n`
/// are zero-padded so the microkernel never branches on width.
fn pack_b_contiguous(sc: &mut GemmScratch, k: usize, n: usize, b: &[C64]) {
    pack_b_with(sc, k, n, |kk, j| b[kk * n + j]);
}

fn pack_b_gather(
    sc: &mut GemmScratch,
    k: usize,
    n: usize,
    b: &[C64],
    b_koff: &[usize],
    noff: &[usize],
) {
    pack_b_with(sc, k, n, |kk, j| b[b_koff[kk] + noff[j]]);
}

fn pack_b_with(sc: &mut GemmScratch, k: usize, n: usize, at: impl Fn(usize, usize) -> C64) {
    let n_pad = n.div_ceil(NR) * NR;
    sc.b_re.clear();
    sc.b_re.resize(k * n_pad, 0.0);
    sc.b_im.clear();
    sc.b_im.resize(k * n_pad, 0.0);
    let mut w = 0;
    for p in 0..k.div_ceil(KC) {
        let (kp0, kc) = panel(k, p);
        for jb in (0..n).step_by(NR) {
            for kk in 0..kc {
                for jr in 0..NR {
                    let (re, im) = if jb + jr < n {
                        let z = at(kp0 + kk, jb + jr);
                        (z.re, z.im)
                    } else {
                        (0.0, 0.0)
                    };
                    sc.b_re[w] = re;
                    sc.b_im[w] = im;
                    w += 1;
                }
            }
        }
    }
    debug_assert_eq!(w, k * n_pad);
}

/// Packs `rows` rows of A for K panel `[kp0, kp0+kc)` into split re/im
/// MR-row blocks (`kk`-major inside a block). Rows beyond the valid
/// count are zero-padded.
fn pack_a_contiguous(
    rows: std::ops::Range<usize>,
    kp0: usize,
    kc: usize,
    k: usize,
    a: &[C64],
    dst_re: &mut Vec<f64>,
    dst_im: &mut Vec<f64>,
) {
    pack_a_with(rows, kp0, kc, |i, kk| a[i * k + kk], dst_re, dst_im);
}

#[allow(clippy::too_many_arguments)]
fn pack_a_gather(
    rows: std::ops::Range<usize>,
    kp0: usize,
    kc: usize,
    a: &[C64],
    moff: &[usize],
    a_koff: &[usize],
    dst_re: &mut Vec<f64>,
    dst_im: &mut Vec<f64>,
) {
    pack_a_with(
        rows,
        kp0,
        kc,
        |i, kk| a[moff[i] + a_koff[kk]],
        dst_re,
        dst_im,
    );
}

fn pack_a_with(
    rows: std::ops::Range<usize>,
    kp0: usize,
    kc: usize,
    at: impl Fn(usize, usize) -> C64,
    dst_re: &mut Vec<f64>,
    dst_im: &mut Vec<f64>,
) {
    let height = rows.len();
    let blocks = height.div_ceil(MR);
    dst_re.clear();
    dst_re.resize(blocks * kc * MR, 0.0);
    dst_im.clear();
    dst_im.resize(blocks * kc * MR, 0.0);
    let mut w = 0;
    for ib in 0..blocks {
        for kk in 0..kc {
            for ir in 0..MR {
                let i = ib * MR + ir;
                let (re, im) = if i < height {
                    let z = at(rows.start + i, kp0 + kk);
                    (z.re, z.im)
                } else {
                    (0.0, 0.0)
                };
                dst_re[w] = re;
                dst_im[w] = im;
                w += 1;
            }
        }
    }
}

/// Signature of the per-row-block A packer (contiguous or gather).
type PackA<'a> =
    dyn Fn(std::ops::Range<usize>, usize, usize, &mut Vec<f64>, &mut Vec<f64>) + Sync + 'a;

/// Drives the packed kernel over `MC`-row output blocks, serially or
/// across Rayon depending on size. B panels must already be packed in
/// `sc`. Row blocks are fixed-size regardless of thread count, and each
/// output element is owned by exactly one block, so parallel and serial
/// execution are bit-identical.
fn run_blocked(
    out: &mut [C64],
    m: usize,
    k: usize,
    n: usize,
    sc: &mut GemmScratch,
    accumulate: bool,
    pack_a: &PackA,
) {
    if !accumulate {
        out.fill(C64::ZERO);
    }
    let parallel = m * k * n >= PAR_MIN_FLOPS && rayon::current_num_threads() > 1 && m > MC;
    if parallel {
        let b_re = &sc.b_re;
        let b_im = &sc.b_im;
        let tasks: Vec<(usize, &mut [C64])> = out
            .chunks_mut(MC * n)
            .enumerate()
            .map(|(bi, ch)| (bi * MC, ch))
            .collect();
        tasks.into_par_iter().for_each(|(row0, ch)| {
            let rows = ch.len() / n;
            let mut a_re = Vec::new();
            let mut a_im = Vec::new();
            row_block(
                ch,
                row0..row0 + rows,
                k,
                n,
                b_re,
                b_im,
                pack_a,
                &mut a_re,
                &mut a_im,
            );
        });
    } else {
        let mut a_re = std::mem::take(&mut sc.a_re);
        let mut a_im = std::mem::take(&mut sc.a_im);
        for row0 in (0..m).step_by(MC) {
            let rows = (m - row0).min(MC);
            let ch = &mut out[row0 * n..(row0 + rows) * n];
            row_block(
                ch,
                row0..row0 + rows,
                k,
                n,
                &sc.b_re,
                &sc.b_im,
                pack_a,
                &mut a_re,
                &mut a_im,
            );
        }
        sc.a_re = a_re;
        sc.a_im = a_im;
    }
}

/// Processes one `MC`-row output block: packs its A slice per K panel
/// and sweeps the microkernel over every `MR x NR` tile.
#[allow(clippy::too_many_arguments)]
fn row_block(
    out: &mut [C64],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    b_re: &[f64],
    b_im: &[f64],
    pack_a: &PackA,
    a_re: &mut Vec<f64>,
    a_im: &mut Vec<f64>,
) {
    let height = rows.len();
    let n_pad = n.div_ceil(NR) * NR;
    let mut panel_start = 0usize;
    for p in 0..k.div_ceil(KC) {
        let (kp0, kc) = panel(k, p);
        pack_a(rows.start..rows.end, kp0, kc, a_re, a_im);
        for jb in (0..n).step_by(NR) {
            let bb = panel_start + (jb / NR) * kc * NR;
            for ib in (0..height).step_by(MR) {
                let ab = (ib / MR) * kc * MR;
                microkernel(
                    out,
                    ib,
                    jb,
                    n,
                    (height - ib).min(MR),
                    (n - jb).min(NR),
                    kc,
                    &a_re[ab..ab + kc * MR],
                    &a_im[ab..ab + kc * MR],
                    &b_re[bb..bb + kc * NR],
                    &b_im[bb..bb + kc * NR],
                );
            }
        }
        panel_start += kc * n_pad;
    }
}

/// The register tile: loads the valid part of an `MR x NR` C tile,
/// folds `kc` terms in ascending order with the `C64::mul_add`
/// component expressions, and stores the valid part back.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    out: &mut [C64],
    ib: usize,
    jb: usize,
    n: usize,
    mr: usize,
    nr: usize,
    kc: usize,
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    let mut acc_re = [[0.0f64; NR]; MR];
    let mut acc_im = [[0.0f64; NR]; MR];
    for i in 0..mr {
        for j in 0..nr {
            let c = out[(ib + i) * n + jb + j];
            acc_re[i][j] = c.re;
            acc_im[i][j] = c.im;
        }
    }
    for kk in 0..kc {
        // Fixed-size views: no bounds checks inside the unrolled tile,
        // and the `[f64; NR]` lanes map straight onto vector registers.
        let ar: &[f64; MR] = a_re[kk * MR..kk * MR + MR].try_into().unwrap();
        let ai: &[f64; MR] = a_im[kk * MR..kk * MR + MR].try_into().unwrap();
        let br: &[f64; NR] = b_re[kk * NR..kk * NR + NR].try_into().unwrap();
        let bi: &[f64; NR] = b_im[kk * NR..kk * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let (ari, aii) = (ar[i], ai[i]);
            let accr = &mut acc_re[i];
            let acci = &mut acc_im[i];
            for j in 0..NR {
                // The C64::mul_add component expressions (+= only
                // commutes the final, exact-in-IEEE addition).
                accr[j] += ari * br[j] - aii * bi[j];
                acci[j] += ari * bi[j] + aii * br[j];
            }
        }
    }
    for i in 0..mr {
        for j in 0..nr {
            out[(ib + i) * n + jb + j] = C64::new(acc_re[i][j], acc_im[i][j]);
        }
    }
}

/// Builds the row-major offset table of a multi-axis view: entry `t`
/// is the flat offset of the `t`-th multi-index over `dims` (last axis
/// fastest) with per-axis `strides`. An empty axis list yields `[0]`.
pub fn build_offsets(out: &mut Vec<usize>, dims: &[usize], strides: &[usize]) {
    out.clear();
    out.push(0);
    for (&d, &s) in dims.iter().zip(strides) {
        push_offset_axis(out, d, s);
    }
}

/// Adds one (fastest-varying) axis of dimension `d` and stride `s` to an
/// offset table under construction — the incremental form of
/// [`build_offsets`] for callers that walk axes without materializing
/// dim/stride arrays first. `out` must be non-empty (seed it with `0`).
pub fn push_offset_axis(out: &mut Vec<usize>, d: usize, s: usize) {
    // Expand in place, back to front: every existing offset becomes
    // `d` consecutive entries with the new (fastest) axis added.
    let l = out.len();
    out.resize(l * d, 0);
    for t in (0..l).rev() {
        let base = out[t];
        for j in (0..d).rev() {
            out[t * d + j] = base + j * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_reference(m: usize, k: usize, n: usize, a: &[C64], b: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] = av.mul_add(b[kk * n + j], out[i * n + j]);
                }
            }
        }
        out
    }

    fn filled(len: usize, seed: u64) -> Vec<C64> {
        // cheap deterministic pseudo-random fill without rand dev-dep noise
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let im = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                C64::new(re + 0.1, im - 0.1)
            })
            .collect()
    }

    #[test]
    fn packed_path_matches_naive_bitwise() {
        for &(m, k, n) in &[
            (16usize, 16usize, 16usize),
            (64, 32, 64),
            (37, 53, 29),
            (4, 300, 4),
        ] {
            let a = filled(m * k, (m + k) as u64);
            let b = filled(k * n, (k + n) as u64);
            let got = matmul(m, k, n, &a, &b);
            let want = naive_reference(m, k, n, &a, &b);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "{m}x{k}x{n}");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn small_and_degenerate_shapes() {
        for &(m, k, n) in &[
            (1usize, 7usize, 1usize),
            (1, 1, 1),
            (2, 3, 2),
            (1, 64, 9),
            (5, 1, 5),
        ] {
            let a = filled(m * k, 3);
            let b = filled(k * n, 4);
            let got = matmul(m, k, n, &a, &b);
            let want = naive_reference(m, k, n, &a, &b);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits());
                assert_eq!(g.im.to_bits(), w.im.to_bits());
            }
        }
    }

    #[test]
    fn matvec_matches_fold() {
        for &(m, k) in &[(1usize, 5usize), (7, 3), (64, 64), (130, 33)] {
            let a = filled(m * k, 9);
            let x = filled(k, 11);
            let mut got = vec![C64::ZERO; m];
            matvec_into(&mut got, m, k, &a, &x);
            for i in 0..m {
                let want = (0..k).fold(C64::ZERO, |acc, j| a[i * k + j].mul_add(x[j], acc));
                assert_eq!(got[i].re.to_bits(), want.re.to_bits());
                assert_eq!(got[i].im.to_bits(), want.im.to_bits());
            }
        }
    }

    #[test]
    fn offsets_enumerate_row_major() {
        let mut out = Vec::new();
        build_offsets(&mut out, &[2, 3], &[100, 10]);
        assert_eq!(out, vec![0, 10, 20, 100, 110, 120]);
        build_offsets(&mut out, &[], &[]);
        assert_eq!(out, vec![0]);
        build_offsets(&mut out, &[3], &[7]);
        assert_eq!(out, vec![0, 7, 14]);
    }

    #[test]
    fn gather_fast_path_inside_with_scratch_does_not_reborrow() {
        // Regression: identity offset tables at a packed-path shape
        // route to the contiguous kernel; that must work on the
        // caller's scratch even when the caller is already inside
        // `with_scratch` (as `Tensor::contract` always is).
        let (m, k, n) = (8usize, 8usize, 64usize);
        let a = filled(m * k, 31);
        let b = filled(k * n, 32);
        let want = naive_reference(m, k, n, &a, &b);
        let mut got = vec![C64::ZERO; m * n];
        with_scratch(|sc| {
            sc.moff = (0..m).map(|i| i * k).collect();
            sc.a_koff = (0..k).collect();
            sc.b_koff = (0..k).map(|kk| kk * n).collect();
            sc.noff = (0..n).collect();
            matmul_gather_into(&mut got, m, k, n, &a, &b, sc);
        });
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }

    #[test]
    fn gather_matches_contiguous() {
        let (m, k, n) = (24usize, 18usize, 20usize);
        let a = filled(m * k, 21);
        let b = filled(k * n, 22);
        let want = matmul(m, k, n, &a, &b);
        let mut sc = GemmScratch {
            moff: (0..m).map(|i| i * k).collect(),
            a_koff: (0..k).collect(),
            b_koff: (0..k).map(|kk| kk * n).collect(),
            noff: (0..n).collect(),
            ..Default::default()
        };
        let mut got = vec![C64::ZERO; m * n];
        matmul_gather_into(&mut got, m, k, n, &a, &b, &mut sc);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), w.re.to_bits());
            assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }
}

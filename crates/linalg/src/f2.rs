//! Linear algebra over the two-element field F2, backed by `u64` bitsets.
//!
//! The CH-form stabilizer state stores three n x n binary matrices (F, G, M)
//! and several length-n binary vectors; every update rule is a row XOR, a
//! column XOR, or a parity of an AND of rows. Packing rows into `u64` words
//! makes each of those O(n/64) — this is what gives the O(n^2)-per-amplitude
//! cost quoted in the paper (Sec. 4.1.2).

use std::fmt;

/// Fixed-length bit vector over F2.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Creates a vector from an iterator of bools (length = iterator length).
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Creates a vector of `len` bits from the low bits of `value`
    /// (bit `i` of the vector = bit `i` of `value`).
    pub fn from_u64(len: usize, value: u64) -> Self {
        assert!(len <= 64 || value >> len.min(63) == 0);
        let mut v = BitVec::zeros(len);
        if !v.words.is_empty() {
            v.words[0] = if len >= 64 {
                value
            } else {
                value & ((1u64 << len) - 1)
            };
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self`.
    #[inline]
    pub fn xor_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Entry-wise AND, returning a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        debug_assert_eq!(self.len, other.len);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Entry-wise XOR, returning a new vector.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Entry-wise NOT (within `len` bits), returning a new vector.
    pub fn not(&self) -> BitVec {
        let mut out = BitVec {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Parity (mod-2 sum) of all bits.
    #[inline]
    pub fn parity(&self) -> bool {
        self.words.iter().fold(0u64, |acc, w| acc ^ w).count_ones() & 1 == 1
    }

    /// F2 inner product: parity of `self AND other`.
    #[inline]
    pub fn dot(&self, other: &BitVec) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u64, |acc, (a, b)| acc ^ (a & b))
            .count_ones()
            & 1
            == 1
    }

    /// True when every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Index of the first set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Clears stray bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Lowest 64 bits as a `u64` (vector must be at most 64 bits).
    pub fn as_u64(&self) -> u64 {
        assert!(self.len <= 64, "as_u64 on vector longer than 64 bits");
        self.words.first().copied().unwrap_or(0)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", self.get(i) as u8)?;
        }
        Ok(())
    }
}

/// Square binary matrix with bit-packed rows.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// The n x n zero matrix.
    pub fn zeros(n: usize) -> Self {
        BitMatrix {
            n,
            rows: (0..n).map(|_| BitVec::zeros(n)).collect(),
        }
    }

    /// The n x n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n);
        for i in 0..n {
            m.rows[i].set(i, true);
        }
        m
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].get(j)
    }

    /// Writes entry (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        self.rows[i].set(j, value);
    }

    /// Borrows row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Replaces row `i`.
    pub fn set_row(&mut self, i: usize, row: BitVec) {
        assert_eq!(row.len(), self.n);
        self.rows[i] = row;
    }

    /// Row operation: `row[dst] ^= row[src]`.
    pub fn xor_row(&mut self, dst: usize, src: usize) {
        if dst == src {
            // XORing a row into itself zeroes it; callers never want that
            // implicitly, so make the intent explicit at the call site.
            panic!("xor_row with dst == src");
        }
        let (a, b) = if dst < src {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.xor_assign(b);
    }

    /// XORs an arbitrary vector into row `dst`.
    pub fn xor_into_row(&mut self, dst: usize, v: &BitVec) {
        self.rows[dst].xor_assign(v);
    }

    /// Column operation: `col[dst] ^= col[src]`.
    pub fn xor_col(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "xor_col with dst == src");
        for row in &mut self.rows {
            if row.get(src) {
                row.flip(dst);
            }
        }
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> BitVec {
        BitVec::from_bools((0..self.n).map(|i| self.get(i, j)))
    }

    /// Row-vector x matrix product over F2: `(x^T M)_j = parity_i x_i M_ij`,
    /// computed as the XOR of the rows selected by `x`.
    pub fn vecmat(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.n);
        let mut out = BitVec::zeros(self.n);
        for i in x.iter_ones() {
            out.xor_assign(&self.rows[i]);
        }
        out
    }

    /// Matrix x column-vector product over F2: `(M x)_i = parity_j M_ij x_j`.
    pub fn matvec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.n);
        BitVec::from_bools((0..self.n).map(|i| self.rows[i].dot(x)))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.n);
        for i in 0..self.n {
            for j in self.rows[i].iter_ones() {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Matrix product over F2.
    pub fn matmul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.n, other.n);
        let mut out = BitMatrix::zeros(self.n);
        for i in 0..self.n {
            out.rows[i] = other.vecmat(&self.rows[i]);
        }
        out
    }

    /// True when `self * other == I` over F2.
    pub fn is_inverse_of(&self, other: &BitMatrix) -> bool {
        self.matmul(other) == BitMatrix::identity(self.n)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.n, self.n)?;
        for r in &self.rows {
            writeln!(f, "  {:?}", r)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(63));
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn parity_counts_ones_mod_two() {
        let a = BitVec::from_bools([true, true, false, true]);
        assert!(a.parity()); // 3 ones
        let b = BitVec::from_bools([true, false, false, true]);
        assert!(!b.parity()); // 2 ones
        assert!(!BitVec::zeros(77).parity());
    }

    #[test]
    fn dot_is_parity_of_and() {
        let a = BitVec::from_bools([true, true, false, true]);
        let b = BitVec::from_bools([true, false, true, true]);
        // overlap at indices 0 and 3 -> even -> false
        assert!(!a.dot(&b));
        let c = BitVec::from_bools([true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn iter_ones_crosses_word_boundary() {
        let mut v = BitVec::zeros(100);
        for i in [3usize, 63, 64, 99] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 63, 64, 99]);
        assert_eq!(v.first_one(), Some(3));
    }

    #[test]
    fn not_masks_tail_bits() {
        let v = BitVec::zeros(70);
        let n = v.not();
        assert_eq!(n.count_ones(), 70);
        assert!(n.parity() == (70 % 2 == 1));
    }

    #[test]
    fn from_u64_round_trip() {
        let v = BitVec::from_u64(10, 0b1011001110);
        assert_eq!(v.as_u64(), 0b1011001110);
        assert!(v.get(1) && v.get(2) && !v.get(0));
    }

    #[test]
    fn identity_matrix_behaviour() {
        let id = BitMatrix::identity(5);
        let x = BitVec::from_bools([true, false, true, true, false]);
        assert_eq!(id.vecmat(&x), x);
        assert_eq!(id.matvec(&x), x);
        assert!(id.is_inverse_of(&id));
    }

    #[test]
    fn row_and_col_xor() {
        let mut m = BitMatrix::identity(3);
        m.xor_row(0, 1); // row0 = e0 + e1
        assert!(m.get(0, 0) && m.get(0, 1) && !m.get(0, 2));
        m.xor_col(2, 0); // col2 ^= col0: rows with col0 set flip col2
        assert!(m.get(0, 2)); // row 0 had col0 set
        assert!(!m.get(1, 2));
        assert!(m.get(2, 2)); // unchanged (row2 col0 = 0)
    }

    #[test]
    fn vecmat_is_row_xor() {
        let mut m = BitMatrix::zeros(4);
        m.set_row(1, BitVec::from_bools([true, true, false, false]));
        m.set_row(3, BitVec::from_bools([false, true, true, false]));
        let x = BitVec::from_bools([false, true, false, true]);
        let y = m.vecmat(&x);
        // rows 1 XOR 3 = 1,0,1,0 ^ ... wait: row1=1100, row3=0110 -> 1010
        assert_eq!(y, BitVec::from_bools([true, false, true, false]));
    }

    #[test]
    fn matmul_against_naive() {
        let mut a = BitMatrix::zeros(3);
        a.set(0, 1, true);
        a.set(1, 0, true);
        a.set(1, 2, true);
        a.set(2, 2, true);
        let mut b = BitMatrix::zeros(3);
        b.set(0, 0, true);
        b.set(1, 1, true);
        b.set(2, 0, true);
        b.set(2, 1, true);
        let c = a.matmul(&b);
        for i in 0..3 {
            for j in 0..3 {
                let mut expect = false;
                for k in 0..3 {
                    expect ^= a.get(i, k) & b.get(k, j);
                }
                assert_eq!(c.get(i, j), expect, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let mut m = BitMatrix::zeros(4);
        m.set(0, 3, true);
        m.set(2, 1, true);
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(3, 0));
    }

    #[test]
    fn cnot_matrix_relation() {
        // F for a CNOT(0 -> 1) circuit: X_0 -> X_0 X_1 means F row 0 = 11.
        let mut f = BitMatrix::identity(2);
        f.xor_row(0, 1);
        let x = BitVec::from_u64(2, 0b01); // x_0 = 1
        let y = f.vecmat(&x);
        assert_eq!(y.as_u64(), 0b11);
    }
}

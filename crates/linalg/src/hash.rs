//! A fast, non-cryptographic hasher (FxHash-style) and map/set aliases.
//!
//! The BGLS sample-parallelization path (paper Sec. 3.2.3) keeps a hot
//! `bitstring -> multiplicity` map that is rebuilt at every gate; SipHash is
//! measurably too slow for small integer-like keys there. This is the same
//! multiply-xor scheme rustc uses, implemented locally to avoid an extra
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx-style hasher: `state = (state rotl 5 ^ word) * K`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_word(word);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&31], 961);
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn deterministic_within_process() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"bitstring");
        h2.write(b"bitstring");
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(0b1010);
        h2.write_u64(0b1011);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn partial_chunks_hash_consistently() {
        let mut h1 = FxHasher::default();
        h1.write(b"abc"); // 3 bytes, below word size
        let mut h2 = FxHasher::default();
        h2.write(b"abd");
        assert_ne!(h1.finish(), h2.finish());
    }
}

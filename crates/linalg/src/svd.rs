//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The MPS substrate needs a robust complex SVD for splitting two-site
//! tensors and for operator-Schmidt decompositions of two-qubit gates.
//! Matrices involved are small (at most `2 chi x 2 chi`), so the one-sided
//! Jacobi method — simple, numerically stable, and embarrassingly easy to
//! verify — is the right tool. No external BLAS/LAPACK is used anywhere in
//! this workspace.

use crate::complex::C64;
use crate::matrix::Matrix;

/// Result of a (thin) singular value decomposition `A = U * diag(s) * V^dagger`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// `m x k` matrix with orthonormal columns, `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values, non-negative, sorted in descending order.
    pub s: Vec<f64>,
    /// `k x n` matrix: the conjugate transpose of V (orthonormal rows).
    pub vt: Matrix,
}

impl Svd {
    /// Reconstructs `U * diag(s) * V^dagger` (for testing / error measurement).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let mut us = Matrix::zeros(self.u.rows(), k);
        for i in 0..self.u.rows() {
            for j in 0..k {
                us[(i, j)] = self.u[(i, j)] * self.s[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// Truncates to at most `max_rank` singular values, additionally dropping
    /// values below `cutoff`. Returns the discarded squared weight
    /// (the truncation error `sum of s_i^2` over dropped `i`).
    pub fn truncate(&mut self, max_rank: usize, cutoff: f64) -> f64 {
        let mut keep = self.s.len().min(max_rank.max(1));
        while keep > 1 && self.s[keep - 1] <= cutoff {
            keep -= 1;
        }
        let discarded: f64 = self.s[keep..].iter().map(|x| x * x).sum();
        self.s.truncate(keep);
        let mut u = Matrix::zeros(self.u.rows(), keep);
        for i in 0..self.u.rows() {
            for j in 0..keep {
                u[(i, j)] = self.u[(i, j)];
            }
        }
        let mut vt = Matrix::zeros(keep, self.vt.cols());
        for i in 0..keep {
            for j in 0..self.vt.cols() {
                vt[(i, j)] = self.vt[(i, j)];
            }
        }
        self.u = u;
        self.vt = vt;
        discarded
    }

    /// Number of singular values above `tol` (numerical rank).
    pub fn rank(&self, tol: f64) -> usize {
        self.s.iter().take_while(|&&x| x > tol).count()
    }
}

/// Maximum number of Jacobi sweeps before declaring convergence failure.
const MAX_SWEEPS: usize = 64;
/// Relative off-diagonal tolerance for convergence.
const JACOBI_TOL: f64 = 1e-14;

/// Computes the thin SVD of an arbitrary complex matrix.
///
/// For `m >= n` the one-sided Jacobi method orthogonalizes the columns of a
/// working copy of `A` by right-multiplying plane rotations; the accumulated
/// rotations form `V`, the column norms the singular values, and the
/// normalized columns `U`. For `m < n` the decomposition of the conjugate
/// transpose is computed and the factors swapped.
pub fn svd(a: &Matrix) -> Svd {
    if a.rows() < a.cols() {
        let t = svd(&a.dagger());
        // A^dagger = U' S V'^dagger  =>  A = V' S U'^dagger
        return Svd {
            u: t.vt.dagger(),
            s: t.s,
            vt: t.u.dagger(),
        };
    }
    let m = a.rows();
    let n = a.cols();
    let mut w = a.clone(); // working copy whose columns get orthogonalized
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2x2 Gram block of columns p and q.
                let mut app = 0.0f64;
                let mut aqq = 0.0f64;
                let mut apq = C64::ZERO;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp.norm_sqr();
                    aqq += wq.norm_sqr();
                    apq += wp.conj() * wq;
                }
                let off = apq.abs();
                if off <= JACOBI_TOL * (app * aqq).sqrt() || off == 0.0 {
                    continue;
                }
                rotated = true;
                // Phase of the cross term; the rotation below zeroes
                // new_p^dagger new_q = e^{i phi}[ (aqq-app)/2 sin2t + |apq| cos2t ].
                let phi = apq.arg();
                // Zeroing condition: (1 - t^2)|apq| + t(aqq - app) = 0, i.e.
                // t^2 - 2 tau t - 1 = 0; take the small-magnitude root.
                let tau = (aqq - app) / (2.0 * off);
                let t = if tau >= 0.0 {
                    -1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let e_pos = C64::cis(phi); // e^{i phi}
                let e_neg = e_pos.conj();
                // Right-multiply by the plane rotation
                //   J[p,p]=c, J[q,p]=e^{-i phi} s, J[p,q]=-e^{i phi} s, J[q,q]=c
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = wp * c + wq * (e_neg * s);
                    w[(i, q)] = wq * c - wp * (e_pos * s);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp * c + vq * (e_neg * s);
                    v[(i, q)] = vq * c - vp * (e_pos * s);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = Matrix::zeros(n, n);
    for (newj, &j) in order.iter().enumerate() {
        let norm = norms[j];
        s.push(norm);
        if norm > 0.0 {
            for i in 0..m {
                u[(i, newj)] = w[(i, j)] / norm;
            }
        }
        for i in 0..n {
            // row newj of V^dagger = conjugate of column j of V
            vt[(newj, i)] = v[(i, j)].conj();
        }
    }

    // Columns of U belonging to zero singular values: fill with an
    // orthonormal completion so U keeps orthonormal columns.
    complete_orthonormal(&mut u, s.iter().take_while(|&&x| x > 0.0).count());

    Svd { u, s, vt }
}

/// Fills columns `from..` of `u` with vectors orthonormal to the preceding
/// columns via modified Gram-Schmidt over the standard basis.
fn complete_orthonormal(u: &mut Matrix, from: usize) {
    let m = u.rows();
    let n = u.cols();
    let mut next_basis = 0usize;
    for j in from..n {
        'search: while next_basis < m {
            // candidate e_{next_basis}
            let mut cand = vec![C64::ZERO; m];
            cand[next_basis] = C64::ONE;
            next_basis += 1;
            for k in 0..j {
                let dot: C64 = (0..m).map(|i| u[(i, k)].conj() * cand[i]).sum();
                for i in 0..m {
                    cand[i] -= u[(i, k)] * dot;
                }
            }
            let norm: f64 = cand.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-8 {
                for i in 0..m {
                    u[(i, j)] = cand[i] / norm;
                }
                break 'search;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn check_svd(a: &Matrix, tol: f64) {
        let d = svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(d.s.len(), k);
        // singular values sorted descending and non-negative
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not sorted: {:?}", d.s);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
        // reconstruction
        let r = d.reconstruct();
        assert!(
            r.approx_eq(a, tol),
            "reconstruction failed:\n{:?}\nvs\n{:?}",
            r,
            a
        );
        // U has orthonormal columns, V^dagger orthonormal rows
        let utu = d.u.dagger().matmul(&d.u);
        assert!(
            utu.approx_eq(&Matrix::identity(k), tol),
            "U not orthonormal"
        );
        let vvt = d.vt.matmul(&d.vt.dagger());
        assert!(
            vvt.approx_eq(&Matrix::identity(k), tol),
            "V not orthonormal"
        );
    }

    #[test]
    fn identity_svd() {
        let d = svd(&Matrix::identity(3));
        for &x in &d.s {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = C64::real(0.5);
        a[(1, 1)] = C64::real(3.0);
        a[(2, 2)] = C64::real(-2.0); // negative entry: |.| becomes singular value
        let d = svd(&a);
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 0.5).abs() < 1e-12);
        check_svd(&a, 1e-10);
    }

    #[test]
    fn random_square_matrices() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = random_matrix(&mut rng, n, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_tall_matrices() {
        let mut rng = StdRng::seed_from_u64(8);
        for (m, n) in [(4, 2), (7, 3), (10, 1), (6, 5)] {
            let a = random_matrix(&mut rng, m, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_wide_matrices() {
        let mut rng = StdRng::seed_from_u64(9);
        for (m, n) in [(2, 4), (3, 7), (1, 10), (5, 6)] {
            let a = random_matrix(&mut rng, m, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // rank-1 outer product
        let mut rng = StdRng::seed_from_u64(10);
        let u = random_matrix(&mut rng, 4, 1);
        let v = random_matrix(&mut rng, 1, 4);
        let a = u.matmul(&v);
        let d = svd(&a);
        assert_eq!(d.rank(1e-9), 1);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let d = svd(&a);
        assert!(d.s.iter().all(|&x| x == 0.0));
        // completion still yields orthonormal U
        let utu = d.u.dagger().matmul(&d.u);
        assert!(utu.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn truncation_error_matches_dropped_weight() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 6, 6);
        let mut d = svd(&a);
        let full: Vec<f64> = d.s.clone();
        let err = d.truncate(3, 0.0);
        let expected: f64 = full[3..].iter().map(|x| x * x).sum();
        assert!((err - expected).abs() < 1e-10);
        assert_eq!(d.s.len(), 3);
        assert_eq!(d.u.cols(), 3);
        assert_eq!(d.vt.rows(), 3);
        // truncated reconstruction error (Frobenius) equals sqrt(dropped weight)
        let r = d.reconstruct();
        let diff = (&a - &r).frobenius_norm();
        assert!((diff - err.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn unitary_input_gives_unit_singular_values() {
        // H (x) H is unitary
        let h = Matrix::from_real(&[&[1.0, 1.0], &[1.0, -1.0]]).scale(C64::real(1.0 / 2f64.sqrt()));
        let hh = h.kron(&h);
        let d = svd(&hh);
        for &x in &d.s {
            assert!((x - 1.0).abs() < 1e-10);
        }
    }
}

//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The MPS substrate needs a robust complex SVD for splitting two-site
//! tensors and for operator-Schmidt decompositions of two-qubit gates.
//! Matrices involved are small (at most `2 chi x 2 chi`), so the one-sided
//! Jacobi method — simple, numerically stable, and embarrassingly easy to
//! verify — is the right tool. No external BLAS/LAPACK is used anywhere in
//! this workspace.

use crate::complex::C64;
use crate::matrix::Matrix;

/// Result of a (thin) singular value decomposition `A = U * diag(s) * V^dagger`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// `m x k` matrix with orthonormal columns, `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values, non-negative, sorted in descending order.
    pub s: Vec<f64>,
    /// `k x n` matrix: the conjugate transpose of V (orthonormal rows).
    pub vt: Matrix,
}

impl Svd {
    /// Reconstructs `U * diag(s) * V^dagger` (for testing / error measurement).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let mut us = Matrix::zeros(self.u.rows(), k);
        for i in 0..self.u.rows() {
            for j in 0..k {
                us[(i, j)] = self.u[(i, j)] * self.s[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// Truncates to at most `max_rank` singular values, additionally dropping
    /// values below `cutoff`. Returns the discarded squared weight
    /// (the truncation error `sum of s_i^2` over dropped `i`).
    pub fn truncate(&mut self, max_rank: usize, cutoff: f64) -> f64 {
        let mut keep = self.s.len().min(max_rank.max(1));
        while keep > 1 && self.s[keep - 1] <= cutoff {
            keep -= 1;
        }
        let discarded: f64 = self.s[keep..].iter().map(|x| x * x).sum();
        self.s.truncate(keep);
        let mut u = Matrix::zeros(self.u.rows(), keep);
        for i in 0..self.u.rows() {
            for j in 0..keep {
                u[(i, j)] = self.u[(i, j)];
            }
        }
        let mut vt = Matrix::zeros(keep, self.vt.cols());
        for i in 0..keep {
            for j in 0..self.vt.cols() {
                vt[(i, j)] = self.vt[(i, j)];
            }
        }
        self.u = u;
        self.vt = vt;
        discarded
    }

    /// Number of singular values above `tol` (numerical rank).
    pub fn rank(&self, tol: f64) -> usize {
        self.s.iter().take_while(|&&x| x > tol).count()
    }
}

/// Maximum number of Jacobi sweeps before declaring convergence failure.
const MAX_SWEEPS: usize = 64;
/// Relative off-diagonal tolerance for convergence.
const JACOBI_TOL: f64 = 1e-14;

/// Computes the thin SVD of an arbitrary complex matrix.
///
/// For `m >= n` the one-sided Jacobi method orthogonalizes the columns of a
/// working copy of `A` by right-multiplying plane rotations; the accumulated
/// rotations form `V`, the column norms the singular values, and the
/// normalized columns `U`. For `m < n` the decomposition of the conjugate
/// transpose is computed and the factors swapped.
pub fn svd(a: &Matrix) -> Svd {
    svd_slice(a.rows(), a.cols(), a.data())
}

/// [`svd`] on a raw row-major slice — lets callers that already hold a
/// buffer (the MPS two-site split) skip building a `Matrix` first.
///
/// Internally the working copy lives in *column-major split re/im
/// planes*, so the Gram cross-term sums and plane-rotation updates of
/// the Jacobi sweep stream contiguous `f64` lanes instead of stride-`n`
/// interleaved complex pairs; squared column norms are cached across the
/// sweep and updated in closed form after each rotation; and `V` is
/// recovered from the converged working copy by a single GEMM (the
/// internal `recover_vt` step) instead of accumulating every rotation.
///
/// **Determinism contract:** the result is a pure function of the input
/// — bit-identical on every call, thread count, and batch shape (the
/// factorization runs serially). The lane-split FMA reductions round
/// differently from a strict sequential fold, so factors may differ
/// from a naive Jacobi implementation in the last units of precision;
/// factorization accuracy (`A ~= U S V^H`, orthonormal factors) is
/// unchanged.
///
/// # Panics
/// Panics if `data.len() != rows * cols`.
pub fn svd_slice(rows: usize, cols: usize, data: &[C64]) -> Svd {
    assert_eq!(data.len(), rows * cols, "svd_slice size mismatch");
    if rows < cols {
        // A^dagger = U' S V'^dagger  =>  A = V' S U'^dagger
        let mut dag = vec![C64::ZERO; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                dag[j * rows + i] = data[i * cols + j].conj();
            }
        }
        let t = svd_slice(cols, rows, &dag);
        return Svd {
            u: t.vt.dagger(),
            s: t.s,
            vt: t.u.dagger(),
        };
    }
    let m = rows;
    let n = cols;
    // Working copy in column-major split planes: column j of W occupies
    // `wr[j*m..(j+1)*m]` / `wi[...]`.
    let mut wr = vec![0.0f64; m * n];
    let mut wi = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let z = data[i * n + j];
            wr[j * m + i] = z.re;
            wi[j * m + i] = z.im;
        }
    }
    // Cached squared column norms, refreshed at every sweep start and
    // updated in closed form after each rotation (the rotation leaves
    // `|w_p'|^2 = c^2 app + s^2 aqq + 2cs|apq|` and the mirror for q),
    // so the per-pair Gram pass only computes the cross term.
    let mut colnorm = vec![0.0f64; n];

    for _sweep in 0..MAX_SWEEPS {
        for (j, slot) in colnorm.iter_mut().enumerate() {
            *slot = norm_sqr_lanes(&wr[j * m..(j + 1) * m], &wi[j * m..(j + 1) * m]);
        }
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (wpr, wqr) = two_cols(&mut wr, p, q, m);
                let (wpi, wqi) = two_cols(&mut wi, p, q, m);
                let (apq_re, apq_im) = gram_cross(wpr, wpi, wqr, wqi);
                let off_sq = apq_re * apq_re + apq_im * apq_im;
                let app = colnorm[p];
                let aqq = colnorm[q];
                // Compare squares: same criterion as
                // `off <= tol * sqrt(app*aqq)` without the square roots.
                if off_sq <= JACOBI_TOL * JACOBI_TOL * (app * aqq) || off_sq == 0.0 {
                    continue;
                }
                rotated = true;
                let off = off_sq.sqrt();
                // Zeroing condition: (1 - t^2)|apq| + t(aqq - app) = 0, i.e.
                // t^2 - 2 tau t - 1 = 0; take the small-magnitude root.
                let tau = (aqq - app) / (2.0 * off);
                let t = if tau >= 0.0 {
                    -1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // e^{i phi} for phi = arg(apq), computed algebraically:
                // cheaper and sharper than cis(atan2(..)).
                let inv_off = 1.0 / off;
                let e_pos = C64::new(apq_re * inv_off, apq_im * inv_off);
                let e_neg = e_pos.conj();
                let ens = e_neg * s;
                let eps = e_pos * s;
                // Right-multiply by the plane rotation
                //   J[p,p]=c, J[q,p]=e^{-i phi} s, J[p,q]=-e^{i phi} s, J[q,q]=c
                rotate_cols(wpr, wpi, wqr, wqi, c, ens, eps);
                let cross = 2.0 * c * s * off;
                colnorm[p] = (c * c * app + s * s * aqq + cross).max(0.0);
                colnorm[q] = (s * s * app + c * c * aqq - cross).max(0.0);
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| norm_sqr_lanes(&wr[j * m..(j + 1) * m], &wi[j * m..(j + 1) * m]).sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    for (newj, &j) in order.iter().enumerate() {
        let norm = norms[j];
        s.push(norm);
        if norm > 0.0 {
            for i in 0..m {
                u[(i, newj)] = C64::new(wr[j * m + i], wi[j * m + i]) / norm;
            }
        }
    }

    // Columns of U belonging to zero singular values: fill with an
    // orthonormal completion so U keeps orthonormal columns.
    complete_orthonormal(&mut u, s.iter().take_while(|&&x| x > 0.0).count());

    let vt = recover_vt(m, n, data, &wr, &wi, &order, &norms);

    Svd { u, s, vt }
}

/// Rebuilds `V^dagger` from the converged working copy instead of
/// accumulating every plane rotation into an `n x n` factor.
///
/// At convergence column `j` of `W` equals `u_j * s_j`, and
/// `A^H w_j = V S U^H u_j s_j = s_j^2 v_j`, so one GEMM recovers every
/// `v_j` with a nonzero singular value. A modified Gram-Schmidt polish
/// (in descending-`s` order, so the well-conditioned directions anchor
/// the basis) restores orthonormality to machine precision where the
/// division by `s_j^2` amplified rounding, and the standard-basis
/// completion fills the null-space rows, exactly as for `U`.
fn recover_vt(
    m: usize,
    n: usize,
    data: &[C64],
    wr: &[f64],
    wi: &[f64],
    order: &[usize],
    norms: &[f64],
) -> Matrix {
    // G = A^H W, n x n: column j holds s_j^2 v_j.
    let mut ah = vec![C64::ZERO; n * m];
    for i in 0..m {
        for j in 0..n {
            ah[j * m + i] = data[i * n + j].conj();
        }
    }
    let mut w = vec![C64::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            w[i * n + j] = C64::new(wr[j * m + i], wi[j * m + i]);
        }
    }
    let g = crate::gemm::matmul(n, m, n, &ah, &w);

    // V as column-major split planes, in descending singular-value
    // order. Recovery divides by s_j^2, amplifying rounding by
    // s_max/s_j, so directions at or below `s_max * RECOVER_MIN` (whose
    // contribution to `A` is below rounding anyway) come from the
    // orthonormal completion instead.
    const RECOVER_MIN: f64 = 1e-13;
    let s_floor = order.first().map_or(0.0, |&j| norms[j] * RECOVER_MIN);
    let mut tvr = vec![0.0f64; n * n];
    let mut tvi = vec![0.0f64; n * n];
    let mut recovered = 0usize;
    for (newj, &j) in order.iter().enumerate() {
        let s_sq = norms[j] * norms[j];
        if norms[j] <= s_floor || s_sq <= 0.0 {
            break; // norms are sorted; the rest complete orthonormally
        }
        recovered = newj + 1;
        let inv = 1.0 / s_sq;
        for i in 0..n {
            let z = g[i * n + j];
            tvr[newj * n + i] = z.re * inv;
            tvi[newj * n + i] = z.im * inv;
        }
        // MGS polish against the previous (better-conditioned) columns:
        // restores orthonormality to machine precision where the
        // division amplified rounding.
        for k in 0..newj {
            let (vkr, vjr) = two_cols(&mut tvr, k, newj, n);
            let (vki, vji) = two_cols(&mut tvi, k, newj, n);
            let (dre, dim) = gram_cross(vkr, vki, vjr, vji);
            for i in 0..n {
                // v_j -= v_k * dot  (complex), componentwise FMA
                let kr = vkr[i];
                let ki = vki[i];
                vjr[i] = kr.mul_add(-dre, ki.mul_add(dim, vjr[i]));
                vji[i] = kr.mul_add(-dim, ki.mul_add(-dre, vji[i]));
            }
        }
        let col = newj * n..(newj + 1) * n;
        let norm = norm_sqr_lanes(&tvr[col.clone()], &tvi[col.clone()]).sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for i in col {
                tvr[i] *= inv;
                tvi[i] *= inv;
            }
        }
    }
    let mut v = Matrix::from_fn(n, n, |i, k| C64::new(tvr[k * n + i], tvi[k * n + i]));
    complete_orthonormal(&mut v, recovered);
    v.dagger()
}

/// Number of partial accumulators in the lane-split reductions below.
/// The sums use [`GRAM_LANES`] independent accumulators per quantity
/// (combined left to right at the end) and fused multiply-adds, which
/// lets the reductions run at full vector width. Every helper here is a
/// deterministic pure function of its inputs — identical on every call
/// and thread count — but not the same rounding as a strict sequential
/// fold.
const GRAM_LANES: usize = 8;

/// Cross term `<w_p, w_q> = sum_i conj(wp_i) wq_i` of two columns held
/// as split re/im lanes.
fn gram_cross(wpr: &[f64], wpi: &[f64], wqr: &[f64], wqi: &[f64]) -> (f64, f64) {
    const L: usize = GRAM_LANES;
    let m = wpr.len();
    let blocks = m / L;
    let mut re1 = [0.0f64; L];
    let mut re2 = [0.0f64; L];
    let mut im1 = [0.0f64; L];
    let mut im2 = [0.0f64; L];
    for (((prc, pic), qrc), qic) in wpr
        .chunks_exact(L)
        .zip(wpi.chunks_exact(L))
        .zip(wqr.chunks_exact(L))
        .zip(wqi.chunks_exact(L))
    {
        let pr: &[f64; L] = prc.try_into().unwrap();
        let pi: &[f64; L] = pic.try_into().unwrap();
        let qr: &[f64; L] = qrc.try_into().unwrap();
        let qi: &[f64; L] = qic.try_into().unwrap();
        for l in 0..L {
            re1[l] = pr[l].mul_add(qr[l], re1[l]);
            re2[l] = pi[l].mul_add(qi[l], re2[l]);
            im1[l] = pr[l].mul_add(qi[l], im1[l]);
            im2[l] = pi[l].mul_add(qr[l], im2[l]);
        }
    }
    for i in blocks * L..m {
        re1[0] = wpr[i].mul_add(wqr[i], re1[0]);
        re2[0] = wpi[i].mul_add(wqi[i], re2[0]);
        im1[0] = wpr[i].mul_add(wqi[i], im1[0]);
        im2[0] = wpi[i].mul_add(wqr[i], im2[0]);
    }
    let re: f64 = re1.iter().sum::<f64>() + re2.iter().sum::<f64>();
    let im: f64 = im1.iter().sum::<f64>() - im2.iter().sum::<f64>();
    (re, im)
}

/// Squared norm of a column held as split re/im lanes.
fn norm_sqr_lanes(cr: &[f64], ci: &[f64]) -> f64 {
    const L: usize = GRAM_LANES;
    let m = cr.len();
    let blocks = m / L;
    let mut acc1 = [0.0f64; L];
    let mut acc2 = [0.0f64; L];
    for (rc, ic) in cr.chunks_exact(L).zip(ci.chunks_exact(L)) {
        let r: &[f64; L] = rc.try_into().unwrap();
        let i: &[f64; L] = ic.try_into().unwrap();
        for l in 0..L {
            acc1[l] = r[l].mul_add(r[l], acc1[l]);
            acc2[l] = i[l].mul_add(i[l], acc2[l]);
        }
    }
    for t in blocks * L..m {
        acc1[0] = cr[t].mul_add(cr[t], acc1[0]);
        acc2[0] = ci[t].mul_add(ci[t], acc2[0]);
    }
    acc1.iter().sum::<f64>() + acc2.iter().sum::<f64>()
}

/// Disjoint mutable views of columns `p < q` in a column-major plane.
#[inline]
fn two_cols(plane: &mut [f64], p: usize, q: usize, m: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q);
    let (left, right) = plane.split_at_mut(q * m);
    (&mut left[p * m..p * m + m], &mut right[..m])
}

/// Applies the plane rotation `w_p' = c w_p + ens w_q`,
/// `w_q' = c w_q - eps w_p` to a column pair held as split re/im lanes.
/// Elementwise with fused multiply-adds; contiguity lets it vectorize.
#[inline]
fn rotate_cols(
    pr: &mut [f64],
    pi: &mut [f64],
    qr: &mut [f64],
    qi: &mut [f64],
    c: f64,
    ens: C64,
    eps: C64,
) {
    for i in 0..pr.len() {
        let wpr = pr[i];
        let wpi = pi[i];
        let wqr = qr[i];
        let wqi = qi[i];
        pr[i] = wqr.mul_add(ens.re, wqi.mul_add(-ens.im, wpr * c));
        pi[i] = wqr.mul_add(ens.im, wqi.mul_add(ens.re, wpi * c));
        qr[i] = wpr.mul_add(-eps.re, wpi.mul_add(eps.im, wqr * c));
        qi[i] = wpr.mul_add(-eps.im, wpi.mul_add(-eps.re, wqi * c));
    }
}

/// Fills columns `from..` of `u` with vectors orthonormal to the preceding
/// columns via modified Gram-Schmidt over the standard basis.
fn complete_orthonormal(u: &mut Matrix, from: usize) {
    let m = u.rows();
    let n = u.cols();
    let mut next_basis = 0usize;
    for j in from..n {
        'search: while next_basis < m {
            // candidate e_{next_basis}
            let mut cand = vec![C64::ZERO; m];
            cand[next_basis] = C64::ONE;
            next_basis += 1;
            for k in 0..j {
                let dot: C64 = (0..m).map(|i| u[(i, k)].conj() * cand[i]).sum();
                for i in 0..m {
                    cand[i] -= u[(i, k)] * dot;
                }
            }
            let norm: f64 = cand.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-8 {
                for i in 0..m {
                    u[(i, j)] = cand[i] / norm;
                }
                break 'search;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn check_svd(a: &Matrix, tol: f64) {
        let d = svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(d.s.len(), k);
        // singular values sorted descending and non-negative
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not sorted: {:?}", d.s);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
        // reconstruction
        let r = d.reconstruct();
        assert!(
            r.approx_eq(a, tol),
            "reconstruction failed:\n{:?}\nvs\n{:?}",
            r,
            a
        );
        // U has orthonormal columns, V^dagger orthonormal rows
        let utu = d.u.dagger().matmul(&d.u);
        assert!(
            utu.approx_eq(&Matrix::identity(k), tol),
            "U not orthonormal"
        );
        let vvt = d.vt.matmul(&d.vt.dagger());
        assert!(
            vvt.approx_eq(&Matrix::identity(k), tol),
            "V not orthonormal"
        );
    }

    #[test]
    fn identity_svd() {
        let d = svd(&Matrix::identity(3));
        for &x in &d.s {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_svd() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = C64::real(0.5);
        a[(1, 1)] = C64::real(3.0);
        a[(2, 2)] = C64::real(-2.0); // negative entry: |.| becomes singular value
        let d = svd(&a);
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 0.5).abs() < 1e-12);
        check_svd(&a, 1e-10);
    }

    #[test]
    fn random_square_matrices() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = random_matrix(&mut rng, n, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_tall_matrices() {
        let mut rng = StdRng::seed_from_u64(8);
        for (m, n) in [(4, 2), (7, 3), (10, 1), (6, 5)] {
            let a = random_matrix(&mut rng, m, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn random_wide_matrices() {
        let mut rng = StdRng::seed_from_u64(9);
        for (m, n) in [(2, 4), (3, 7), (1, 10), (5, 6)] {
            let a = random_matrix(&mut rng, m, n);
            check_svd(&a, 1e-9);
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // rank-1 outer product
        let mut rng = StdRng::seed_from_u64(10);
        let u = random_matrix(&mut rng, 4, 1);
        let v = random_matrix(&mut rng, 1, 4);
        let a = u.matmul(&v);
        let d = svd(&a);
        assert_eq!(d.rank(1e-9), 1);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let d = svd(&a);
        assert!(d.s.iter().all(|&x| x == 0.0));
        // completion still yields orthonormal U
        let utu = d.u.dagger().matmul(&d.u);
        assert!(utu.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn truncation_error_matches_dropped_weight() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 6, 6);
        let mut d = svd(&a);
        let full: Vec<f64> = d.s.clone();
        let err = d.truncate(3, 0.0);
        let expected: f64 = full[3..].iter().map(|x| x * x).sum();
        assert!((err - expected).abs() < 1e-10);
        assert_eq!(d.s.len(), 3);
        assert_eq!(d.u.cols(), 3);
        assert_eq!(d.vt.rows(), 3);
        // truncated reconstruction error (Frobenius) equals sqrt(dropped weight)
        let r = d.reconstruct();
        let diff = (&a - &r).frobenius_norm();
        assert!((diff - err.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn unitary_input_gives_unit_singular_values() {
        // H (x) H is unitary
        let h = Matrix::from_real(&[&[1.0, 1.0], &[1.0, -1.0]]).scale(C64::real(1.0 / 2f64.sqrt()));
        let hh = h.kron(&h);
        let d = svd(&hh);
        for &x in &d.s {
            assert!((x - 1.0).abs() < 1e-10);
        }
    }
}

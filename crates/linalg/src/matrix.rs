//! Dense row-major complex matrices.
//!
//! Sized for quantum-gate work: typical matrices are 2x2 .. 8x8 unitaries,
//! with occasional (2 chi x 2 chi) factors inside the MPS code. The
//! implementation therefore favours simplicity and cache-friendly row-major
//! loops over blocking tricks that only pay off for huge matrices.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense, row-major matrix of [`C64`] entries.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from rows of real numbers (convenience for tests).
    pub fn from_real(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| C64::real(x)));
        }
        Matrix::from_vec(r, c, data)
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (dagger).
    pub fn dagger(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Multiplies every entry by scalar `k`.
    pub fn scale(&self, k: C64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix product `self * rhs`, via the blocked kernels in
    /// [`crate::gemm`] (naive ascending-`k` fold below the packing
    /// threshold, cache-blocked register tiles with deterministic Rayon
    /// row blocks above it).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let data = crate::gemm::matmul(self.rows, self.cols, rhs.cols, &self.data, &rhs.data);
        Matrix::from_vec(self.rows, rhs.cols, data)
    }

    /// Matrix-vector product `self * v` (blocked over row groups in
    /// [`crate::gemm::matvec_into`]).
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![C64::ZERO; self.rows];
        crate::gemm::matvec_into(&mut out, self.rows, self.cols, &self.data, v);
        out
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Entry-wise approximate equality with tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// True when `self * self^dagger ~= I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.matmul(&self.dagger())
            .approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// True when the matrix equals its own conjugate transpose within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// True when every off-diagonal entry has magnitude at most `tol`
    /// (square matrices only; non-square matrices are never diagonal).
    pub fn is_diagonal(&self, tol: f64) -> bool {
        self.is_square()
            && (0..self.rows).all(|i| (0..self.cols).all(|j| i == j || self[(i, j)].abs() <= tol))
    }

    /// Matrix power by repeated squaring (square matrices only).
    pub fn pow(&self, mut e: u32) -> Matrix {
        assert!(self.is_square(), "pow of non-square matrix");
        let mut base = self.clone();
        let mut acc = Matrix::identity(self.rows);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.matmul(&base);
            }
            base = base.matmul(&base);
            e >>= 1;
        }
        acc
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_real(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    #[test]
    fn is_diagonal_checks_off_diagonal_entries() {
        assert!(Matrix::identity(4).is_diagonal(0.0));
        assert!(Matrix::from_real(&[&[2.0, 0.0], &[0.0, -3.0]]).is_diagonal(0.0));
        assert!(!pauli_x().is_diagonal(1e-12));
        assert!(!Matrix::zeros(2, 3).is_diagonal(1.0));
    }

    fn pauli_y() -> Matrix {
        Matrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_real(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let i2 = Matrix::identity(2);
        assert!(x.matmul(&i2).approx_eq(&x, 1e-15));
        assert!(i2.matmul(&x).approx_eq(&x, 1e-15));
    }

    #[test]
    fn pauli_algebra() {
        // X * Y = i Z
        let xy = pauli_x().matmul(&pauli_y());
        assert!(xy.approx_eq(&pauli_z().scale(C64::I), 1e-15));
        // X^2 = I
        assert!(pauli_x().pow(2).approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
        }
    }

    #[test]
    fn kron_dimensions_and_values() {
        let k = pauli_x().kron(&pauli_z());
        assert_eq!((k.rows(), k.cols()), (4, 4));
        // X(x)Z |00> = |10>  with sign +1 on the z part of |0>
        assert_eq!(k[(2, 0)], C64::ONE);
        assert_eq!(k[(3, 1)], -C64::ONE);
        assert_eq!(k[(0, 0)], C64::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A(x)B)(C(x)D) = (AC)(x)(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = Matrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = pauli_x();
        let b = pauli_y();
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = pauli_y();
        let v = vec![C64::new(1.0, 2.0), C64::new(-0.5, 0.0)];
        let as_mat = Matrix::from_vec(2, 1, v.clone());
        let mv = m.matvec(&v);
        let mm = m.matmul(&as_mat);
        assert!(mv[0].approx_eq(mm[(0, 0)], 1e-15));
        assert!(mv[1].approx_eq(mm[(1, 0)], 1e-15));
    }

    #[test]
    fn trace_and_norm() {
        let z = pauli_z();
        assert!(z.trace().approx_eq(C64::ZERO, 1e-15));
        assert!((z.frobenius_norm() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn non_square_is_not_unitary() {
        assert!(!Matrix::zeros(2, 3).is_unitary(1e-9));
    }
}

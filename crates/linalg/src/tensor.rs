//! Labelled dense tensors and pairwise network contraction.
//!
//! This is the quimb substitute used by the lazy tensor-network state in
//! `bgls-mps`. Each tensor axis carries a `BondId` label; contracting two
//! tensors sums over every label they share (Einstein convention). A small
//! greedy planner contracts whole networks to a scalar, which is exactly the
//! `mps_bitstring_probability` workload from the paper (Sec. 4.3.2).

use crate::complex::C64;
use crate::matrix::Matrix;

/// Identifier for a tensor bond (shared index). Unique per logical bond.
pub type BondId = u32;

/// Dense tensor with one [`BondId`] label per axis.
///
/// Data is stored row-major with respect to the axis order: the last axis
/// varies fastest. Labels must be unique within a tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    labels: Vec<BondId>,
    shape: Vec<usize>,
    data: Vec<C64>,
}

impl Tensor {
    /// Builds a tensor from labels, shape, and row-major data.
    ///
    /// # Panics
    /// Panics if lengths are inconsistent or labels repeat.
    pub fn new(labels: Vec<BondId>, shape: Vec<usize>, data: Vec<C64>) -> Self {
        assert_eq!(labels.len(), shape.len(), "labels/shape rank mismatch");
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length does not match shape");
        for (i, l) in labels.iter().enumerate() {
            assert!(
                !labels[..i].contains(l),
                "duplicate bond label {l} in tensor"
            );
        }
        Tensor {
            labels,
            shape,
            data,
        }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: C64) -> Self {
        Tensor {
            labels: vec![],
            shape: vec![],
            data: vec![value],
        }
    }

    /// Converts a matrix into a rank-2 tensor with labels `(row, col)`.
    pub fn from_matrix(m: &Matrix, row: BondId, col: BondId) -> Self {
        Tensor::new(vec![row, col], vec![m.rows(), m.cols()], m.data().to_vec())
    }

    /// Axis labels.
    #[inline]
    pub fn labels(&self) -> &[BondId] {
        &self.labels
    }

    /// Axis sizes.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.labels.len()
    }

    /// Total number of entries.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Size of the axis carrying `label`, if present.
    pub fn dim_of(&self, label: BondId) -> Option<usize> {
        self.axis_of(label).map(|a| self.shape[a])
    }

    /// Position of the axis carrying `label`.
    pub fn axis_of(&self, label: BondId) -> Option<usize> {
        self.labels.iter().position(|&l| l == label)
    }

    /// Extracts the scalar value of a rank-0 tensor.
    ///
    /// # Panics
    /// Panics if the tensor has rank > 0.
    pub fn into_scalar(self) -> C64 {
        assert!(
            self.rank() == 0,
            "into_scalar on rank-{} tensor",
            self.rank()
        );
        self.data[0]
    }

    fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.shape[i + 1];
        }
        s
    }

    /// Fixes the axis labelled `label` at `index`, dropping that axis.
    /// This is the quimb `isel` operation used to slice physical legs to a
    /// bitstring value.
    ///
    /// # Panics
    /// Panics if the label is absent or the index is out of bounds.
    pub fn isel(&self, label: BondId, index: usize) -> Tensor {
        let axis = self
            .axis_of(label)
            .unwrap_or_else(|| panic!("isel: label {label} not found"));
        assert!(
            index < self.shape[axis],
            "isel: index {index} out of bounds for axis of size {}",
            self.shape[axis]
        );
        let strides = self.strides();
        let mut new_labels = self.labels.clone();
        new_labels.remove(axis);
        let mut new_shape = self.shape.clone();
        new_shape.remove(axis);
        let out_len: usize = new_shape.iter().product();
        let mut out = Vec::with_capacity(out_len);

        // Iterate the remaining axes in row-major order.
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let axis_stride = strides[axis];
        for o in 0..outer {
            let base = o * axis_stride * self.shape[axis] + index * axis_stride;
            out.extend_from_slice(&self.data[base..base + inner]);
        }
        Tensor::new(new_labels, new_shape, out)
    }

    /// Reorders axes so their labels appear in `order` (which must be a
    /// permutation of the current labels).
    pub fn permute(&self, order: &[BondId]) -> Tensor {
        assert_eq!(order.len(), self.rank(), "permute rank mismatch");
        let axes: Vec<usize> = order
            .iter()
            .map(|l| {
                self.axis_of(*l)
                    .unwrap_or_else(|| panic!("permute: label {l} not found"))
            })
            .collect();
        let old_strides = self.strides();
        let new_shape: Vec<usize> = axes.iter().map(|&a| self.shape[a]).collect();
        let mut out = vec![C64::ZERO; self.data.len()];
        let mut idx = vec![0usize; self.rank()];
        for slot in out.iter_mut() {
            // map multi-index in new order to flat offset in old order
            let mut off = 0usize;
            for (k, &a) in axes.iter().enumerate() {
                off += idx[k] * old_strides[a];
            }
            *slot = self.data[off];
            // increment multi-index (row-major, last varies fastest)
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] < new_shape[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        Tensor::new(order.to_vec(), new_shape, out)
    }

    /// Renames a bond label. No data movement.
    pub fn relabel(&mut self, from: BondId, to: BondId) {
        if from == to {
            return;
        }
        assert!(
            !self.labels.contains(&to),
            "relabel: target label {to} already present"
        );
        let axis = self
            .axis_of(from)
            .unwrap_or_else(|| panic!("relabel: label {from} not found"));
        self.labels[axis] = to;
    }

    /// Contracts two tensors over every shared label.
    ///
    /// With no shared labels this is the outer product. The result carries
    /// `self`'s free labels followed by `other`'s free labels.
    ///
    /// No permuted copies are materialized: the operands are described
    /// to [`crate::gemm::matmul_gather_into`] by per-axis offset tables
    /// (the `m` index walks `self`'s free axes, the `k` index the shared
    /// axes, the `n` index `other`'s free axes), and the gather GEMM
    /// packs those strided panels directly. Offset tables and packing
    /// buffers are reused across calls via the thread-local
    /// [`crate::gemm::with_scratch`] scratch.
    pub fn contract(&self, other: &Tensor) -> Tensor {
        let shared: Vec<BondId> = self
            .labels
            .iter()
            .copied()
            .filter(|l| other.labels.contains(l))
            .collect();
        let a_free: Vec<BondId> = self
            .labels
            .iter()
            .copied()
            .filter(|l| !shared.contains(l))
            .collect();
        let b_free: Vec<BondId> = other
            .labels
            .iter()
            .copied()
            .filter(|l| !shared.contains(l))
            .collect();

        for &l in &shared {
            assert_eq!(
                self.dim_of(l),
                other.dim_of(l),
                "contract: bond {l} has mismatched dimensions"
            );
        }

        let k: usize = shared.iter().map(|&l| self.dim_of(l).unwrap()).product();
        let m = self.size() / k.max(1);
        let n = other.size() / k.max(1);

        let a_strides = self.strides();
        let b_strides = other.strides();
        let mut out = vec![C64::ZERO; m * n];
        crate::gemm::with_scratch(|sc| {
            let fill_table =
                |table: &mut Vec<usize>, t: &Tensor, strides: &[usize], labels: &[BondId]| {
                    table.clear();
                    table.push(0);
                    for &l in labels {
                        let axis = t.axis_of(l).unwrap();
                        crate::gemm::push_offset_axis(table, t.shape[axis], strides[axis]);
                    }
                };
            fill_table(&mut sc.moff, self, &a_strides, &a_free);
            fill_table(&mut sc.a_koff, self, &a_strides, &shared);
            fill_table(&mut sc.b_koff, other, &b_strides, &shared);
            fill_table(&mut sc.noff, other, &b_strides, &b_free);
            crate::gemm::matmul_gather_into(&mut out, m, k, n, &self.data, &other.data, sc);
        });

        let mut labels = a_free;
        labels.extend(&b_free);
        let shape: Vec<usize> = labels
            .iter()
            .map(|&l| {
                self.dim_of(l)
                    .or_else(|| other.dim_of(l))
                    .expect("free label must come from one operand")
            })
            .collect();
        Tensor::new(labels, shape, out)
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, k: C64) -> Tensor {
        Tensor {
            labels: self.labels.clone(),
            shape: self.shape.clone(),
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Entry-wise approximate equality (labels and shape must match exactly).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.labels == other.labels
            && self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

/// Fully contracts a network of tensors to a scalar using a greedy pairwise
/// plan: at each step, contract the pair of tensors (sharing at least one
/// bond, if any exist) that yields the smallest intermediate tensor.
///
/// Every bond label must appear on exactly one or two tensors; all labels
/// must be contracted away by the end (i.e. the network must be closed).
///
/// # Panics
/// Panics if the final result is not rank-0 (the network was not closed).
pub fn contract_network(tensors: Vec<Tensor>) -> C64 {
    if tensors.is_empty() {
        return C64::ONE;
    }
    // Fast path: factor out rank-0 tensors first. After physical-index
    // slicing most tensors of a lowly-entangled state are scalars, and
    // multiplying them out keeps the O(T^2)-per-step pair search below
    // confined to the (small) entangled core.
    let mut scalar = C64::ONE;
    let mut tensors: Vec<Tensor> = tensors
        .into_iter()
        .filter_map(|t| {
            if t.rank() == 0 {
                scalar *= t.into_scalar();
                None
            } else {
                Some(t)
            }
        })
        .collect();
    if tensors.is_empty() {
        return scalar;
    }
    // Scratch for the planner: label -> first holder, and the deduped
    // connected pair list of the current step.
    let mut holder: crate::FxHashMap<BondId, usize> = crate::FxHashMap::default();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    while tensors.len() > 1 {
        // Candidate pairs are tensors connected by at least one bond —
        // found through a label index in O(T * rank) instead of the
        // all-pairs O(T^2) scan. Evaluating them in ascending (i, j)
        // order with a strict `<` preference picks exactly the pair the
        // historical full scan picked (unshared pairs only mattered
        // when no shared pair existed), so contraction order — and with
        // it every intermediate rounding — is unchanged.
        holder.clear();
        pairs.clear();
        for (i, t) in tensors.iter().enumerate() {
            for &l in t.labels() {
                match holder.get(&l) {
                    None => {
                        holder.insert(l, i);
                    }
                    Some(&h) => pairs.push((h, i)),
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut best: Option<(usize, usize, usize)> = None; // (i, j, result_size)
        for &(i, j) in &pairs {
            let shared_size: usize = tensors[i]
                .labels()
                .iter()
                .filter(|l| tensors[j].labels().contains(l))
                .map(|&l| tensors[i].dim_of(l).unwrap())
                .product();
            let result_size = tensors[i].size() / shared_size * (tensors[j].size() / shared_size);
            if best.is_none_or(|(_, _, sz)| result_size < sz) {
                best = Some((i, j, result_size));
            }
        }
        if best.is_none() {
            // Fully disconnected remainder: fall back to the historical
            // smallest-outer-product choice.
            for i in 0..tensors.len() {
                for j in (i + 1)..tensors.len() {
                    let result_size = tensors[i].size() * tensors[j].size();
                    if best.is_none_or(|(_, _, sz)| result_size < sz) {
                        best = Some((i, j, result_size));
                    }
                }
            }
        }
        let (i, j, _) = best.expect("at least two tensors remain");
        let b = tensors.swap_remove(j);
        let a = tensors.swap_remove(i);
        let c = a.contract(&b);
        if c.rank() == 0 {
            scalar *= c.into_scalar();
            if tensors.is_empty() {
                return scalar;
            }
        } else {
            tensors.push(c);
        }
    }
    scalar * tensors.pop().unwrap().into_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> C64 {
        C64::real(re)
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(C64::new(2.0, -1.0));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.into_scalar(), C64::new(2.0, -1.0));
    }

    #[test]
    fn isel_selects_correct_slice() {
        // shape (2,3), labels (0,1): data[i,j] = 3i + j
        let t = Tensor::new(
            vec![0, 1],
            vec![2, 3],
            (0..6).map(|x| c(x as f64)).collect(),
        );
        let row1 = t.isel(0, 1);
        assert_eq!(row1.shape(), &[3]);
        assert_eq!(row1.data(), &[c(3.0), c(4.0), c(5.0)]);
        let col2 = t.isel(1, 2);
        assert_eq!(col2.shape(), &[2]);
        assert_eq!(col2.data(), &[c(2.0), c(5.0)]);
    }

    #[test]
    fn isel_middle_axis() {
        // shape (2,2,2), labels (0,1,2): data = index value 0..8
        let t = Tensor::new(
            vec![0, 1, 2],
            vec![2, 2, 2],
            (0..8).map(|x| c(x as f64)).collect(),
        );
        let s = t.isel(1, 1);
        assert_eq!(s.labels(), &[0, 2]);
        // entries with middle index = 1: flat indices 2,3,6,7
        assert_eq!(s.data(), &[c(2.0), c(3.0), c(6.0), c(7.0)]);
    }

    #[test]
    fn permute_transposes() {
        let t = Tensor::new(
            vec![10, 20],
            vec![2, 3],
            (0..6).map(|x| c(x as f64)).collect(),
        );
        let p = t.permute(&[20, 10]);
        assert_eq!(p.shape(), &[3, 2]);
        // p[j,i] = t[i,j]
        assert_eq!(p.data(), &[c(0.0), c(3.0), c(1.0), c(4.0), c(2.0), c(5.0)]);
    }

    #[test]
    fn contract_matches_matrix_multiply() {
        let a = Matrix::from_real(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_real(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let ta = Tensor::from_matrix(&a, 0, 1);
        let tb = Tensor::from_matrix(&b, 1, 2);
        let tc = ta.contract(&tb);
        let expect = a.matmul(&b);
        assert_eq!(tc.labels(), &[0, 2]);
        assert_eq!(tc.data(), expect.data());
    }

    #[test]
    fn contract_over_two_shared_bonds_is_full_trace_product() {
        // <A, B> = sum_ij A_ij B_ij with B carrying the same labels
        let a = Matrix::from_real(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_real(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let ta = Tensor::from_matrix(&a, 0, 1);
        let tb = Tensor::from_matrix(&b, 0, 1);
        let s = ta.contract(&tb).into_scalar();
        assert_eq!(s, c(1.0 * 5.0 + 2.0 * 6.0 + 3.0 * 7.0 + 4.0 * 8.0));
    }

    #[test]
    fn outer_product_when_no_shared_labels() {
        let ta = Tensor::new(vec![0], vec![2], vec![c(1.0), c(2.0)]);
        let tb = Tensor::new(vec![1], vec![2], vec![c(3.0), c(4.0)]);
        let t = ta.contract(&tb);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[c(3.0), c(4.0), c(6.0), c(8.0)]);
    }

    #[test]
    fn relabel_changes_only_labels() {
        let mut t = Tensor::new(vec![0, 1], vec![2, 2], vec![c(1.0); 4]);
        t.relabel(1, 9);
        assert_eq!(t.labels(), &[0, 9]);
    }

    #[test]
    #[should_panic(expected = "duplicate bond label")]
    fn duplicate_labels_rejected() {
        let _ = Tensor::new(vec![3, 3], vec![2, 2], vec![c(0.0); 4]);
    }

    #[test]
    fn network_contraction_matches_manual_chain() {
        // v^T M w  as a 3-tensor network
        let v = Tensor::new(vec![0], vec![2], vec![c(1.0), c(2.0)]);
        let m = Tensor::from_matrix(&Matrix::from_real(&[&[1.0, -1.0], &[0.5, 2.0]]), 0, 1);
        let w = Tensor::new(vec![1], vec![2], vec![c(3.0), c(-1.0)]);
        let got = contract_network(vec![v, m, w]);
        // manual: v^T M = [1*1+2*0.5, 1*-1+2*2] = [2, 3]; dot w = 6 - 3 = 3
        assert!(got.approx_eq(c(3.0), 1e-12));
    }

    #[test]
    fn network_contraction_of_ghz_amplitude() {
        // GHZ on 3 qubits as a bond-2 chain; amplitude of |000> is 1/sqrt(2).
        let inv = 1.0 / 2f64.sqrt();
        // site tensors for bitstring 000 with two bonds (labels 100, 101):
        // t0[b0] = diag-selector, middle t1[b0,b1], t2[b1]
        let t0 = Tensor::new(vec![100], vec![2], vec![c(inv), c(0.0)]);
        let t1 = Tensor::new(
            vec![100, 101],
            vec![2, 2],
            vec![c(1.0), c(0.0), c(0.0), c(0.0)],
        );
        let t2 = Tensor::new(vec![101], vec![2], vec![c(1.0), c(0.0)]);
        let amp = contract_network(vec![t0, t1, t2]);
        assert!(amp.approx_eq(c(inv), 1e-12));
    }

    #[test]
    fn empty_network_is_one() {
        assert_eq!(contract_network(vec![]), C64::ONE);
    }

    #[test]
    fn disconnected_network_multiplies_components() {
        let s1 = Tensor::new(vec![0], vec![2], vec![c(1.0), c(1.0)]);
        let s2 = Tensor::new(vec![0], vec![2], vec![c(2.0), c(0.0)]);
        let t1 = Tensor::new(vec![1], vec![2], vec![c(0.0), c(3.0)]);
        let t2 = Tensor::new(vec![1], vec![2], vec![c(5.0), c(1.0)]);
        // (s1 . s2) * (t1 . t2) = 2 * 3 = 6
        let got = contract_network(vec![s1, t1, s2, t2]);
        assert!(got.approx_eq(c(6.0), 1e-12));
    }
}

//! A minimal, fast double-precision complex scalar.
//!
//! The BGLS reproduction deliberately avoids external linear-algebra crates;
//! this module provides the one numeric type everything else builds on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
///
/// `#[repr(C)]` is load-bearing: the runtime-dispatched SIMD kernels in
/// [`crate::dispatch`] reinterpret `&[C64]` as `&[f64]` with the layout
/// `[re, im, re, im, ..]`, which requires the declared field order.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a unit-modulus phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// `i^k` for `k` taken modulo 4. Exact (no trigonometry).
    #[inline]
    pub fn i_pow(k: i64) -> Self {
        match k.rem_euclid(4) {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`. Cheaper than [`C64::abs`]; prefer it for
    /// probabilities.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Complex square root (principal branch).
    #[inline]
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse. Returns NaN components when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on each component.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        C64::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^{-1} by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!((z * z.inv()).approx_eq(C64::ONE, TOL));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, C64::ZERO);
    }

    #[test]
    fn norm_and_abs() {
        let z = C64::new(3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.abs() - 5.0).abs() < TOL);
    }

    #[test]
    fn conjugation() {
        let z = C64::new(1.5, 2.5);
        assert_eq!(z.conj().im, -2.5);
        assert!((z * z.conj()).approx_eq(C64::real(z.norm_sqr()), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((C64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn i_pow_cycles_mod_4() {
        assert_eq!(C64::i_pow(0), C64::ONE);
        assert_eq!(C64::i_pow(1), C64::I);
        assert_eq!(C64::i_pow(2), -C64::ONE);
        assert_eq!(C64::i_pow(3), -C64::I);
        assert_eq!(C64::i_pow(4), C64::ONE);
        assert_eq!(C64::i_pow(-1), -C64::I);
        assert_eq!(C64::i_pow(-2), -C64::ONE);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = C64::new(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(-C64::ONE, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-2.0, 3.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        let c = C64::new(4.0, -1.0);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn division_by_real() {
        let z = C64::new(2.0, -6.0);
        assert_eq!(z / 2.0, C64::new(1.0, -3.0));
    }

    #[test]
    fn sum_iterator() {
        let v = [C64::ONE, C64::I, C64::new(1.0, 1.0)];
        let s: C64 = v.iter().sum();
        assert_eq!(s, C64::new(2.0, 2.0));
    }
}

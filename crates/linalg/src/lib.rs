//! # bgls-linalg
//!
//! Self-contained linear-algebra substrate for the BGLS reproduction:
//!
//! * [`C64`] — complex scalars;
//! * [`Matrix`] — dense complex matrices (gate unitaries, MPS factors);
//! * [`Tensor`] / [`contract_network`] — labelled tensors and greedy network
//!   contraction (the quimb substitute used by the lazy MPS state);
//! * [`gemm`] — cache-blocked, register-tiled complex GEMM/matvec with
//!   deterministic Rayon row-block parallelism (the arithmetic floor
//!   under [`Matrix::matmul`] and [`Tensor::contract`]);
//! * [`svd`] — one-sided Jacobi SVD for MPS splitting/truncation;
//! * [`BitVec`] / [`BitMatrix`] — F2 linear algebra backing the CH-form
//!   stabilizer state;
//! * [`FxHashMap`] — fast hashing for the sample-parallelization
//!   multiplicity map.
//!
//! Everything here is implemented from scratch — no BLAS, LAPACK, or
//! external numeric crates — per the reproduction charter in `DESIGN.md`.
//! The only dependency is the workspace's vendored `rayon` stand-in,
//! which the GEMM layer uses for deterministic row-block parallelism.

#![warn(missing_docs)]

mod complex;
pub mod dispatch;
mod f2;
pub mod gemm;
mod hash;
mod matrix;
mod svd;
mod tensor;

pub use complex::C64;
pub use f2::{BitMatrix, BitVec};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use matrix::Matrix;
pub use svd::{svd, svd_slice, Svd};
pub use tensor::{contract_network, BondId, Tensor};

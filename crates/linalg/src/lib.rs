//! # bgls-linalg
//!
//! Self-contained linear-algebra substrate for the BGLS reproduction:
//!
//! * [`C64`] — complex scalars;
//! * [`Matrix`] — dense complex matrices (gate unitaries, MPS factors);
//! * [`Tensor`] / [`contract_network`] — labelled tensors and greedy network
//!   contraction (the quimb substitute used by the lazy MPS state);
//! * [`svd`] — one-sided Jacobi SVD for MPS splitting/truncation;
//! * [`BitVec`] / [`BitMatrix`] — F2 linear algebra backing the CH-form
//!   stabilizer state;
//! * [`FxHashMap`] — fast hashing for the sample-parallelization
//!   multiplicity map.
//!
//! Everything here is implemented from scratch — no BLAS, LAPACK, or
//! external numeric crates — per the reproduction charter in `DESIGN.md`.

#![warn(missing_docs)]

mod complex;
mod f2;
mod hash;
mod matrix;
mod svd;
mod tensor;

pub use complex::C64;
pub use f2::{BitMatrix, BitVec};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use matrix::Matrix;
pub use svd::{svd, Svd};
pub use tensor::{contract_network, BondId, Tensor};

//! Runtime-ISA-dispatched dense gate and reduction microkernels.
//!
//! The dense backends (state vector, vectorized density matrix) spend
//! essentially all of their time in three kernel shapes: 1q-gate butterflies,
//! 2q-gate 4-term updates, and `|z|^2` reductions. This module provides those
//! kernels in split-re/im SIMD form for AVX2, AVX-512, and NEON, plus a safe
//! portable scalar path, and selects an implementation **once at startup** via
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`. That replaces
//! the old `-C target-cpu=native` build flag: one shipped binary now runs the
//! wide kernels wherever the host supports them and falls back to the scalar
//! path everywhere else.
//!
//! # Determinism contract
//!
//! Every ISA path computes **bit-identical** results to the scalar path:
//!
//! * complex products are evaluated as
//!   `(w.re*a.re - w.im*a.im, w.re*a.im + w.im*a.re)` in every path; the SIMD
//!   form `a * splat(w.re) + swap(a) * [-w.im, +w.im]` is equal bit-for-bit
//!   because IEEE-754 multiplication is commutative, `x * (-y)` flips exactly
//!   the sign bit of `x * y`, and `x + (-y) == x - y`;
//! * no FMA contraction anywhere — products and sums stay separate ops;
//! * multi-term gate updates accumulate left-to-right in row order, the same
//!   association in every path;
//! * [`sum_norm_sqr`] folds through a fixed 8-lane accumulator layout
//!   (lane `j` takes elements `8i + j` of the `f64` view, the tail starts at
//!   lane 0, lanes fold in ascending order), so scalar, AVX2 (2×4 lanes),
//!   AVX-512 (1×8 lanes), and NEON (4×2 lanes) all perform the exact same
//!   additions in the exact same order.
//!
//! This is what lets the sharded state-vector layer assert 0-ulp agreement
//! between forced-scalar and detected-SIMD runs, and lets CI force paths via
//! the `BGLS_ISA` environment variable without perturbing histograms.
//!
//! # Index convention
//!
//! Gate coefficient arrays are row-major (`u[row * dim + col]`). For the 2q
//! kernels, gate index bit 1 is the **higher** memory bit and bit 0 the
//! lower; callers with the opposite qubit order permute the 4×4 matrix before
//! calling (see `bgls-statevector`'s kernel layer).

use crate::C64;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set families the kernels can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar Rust — always available, the canonical semantics.
    Scalar,
    /// x86-64 AVX2 (4 `f64` lanes).
    Avx2,
    /// x86-64 AVX-512 F+VL (8 `f64` lanes; interleaved sub-kernels reuse the
    /// AVX2 forms).
    Avx512,
    /// AArch64 NEON (2 `f64` lanes).
    Neon,
}

impl Isa {
    /// Lower-case name, as accepted by the `BGLS_ISA` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }

    fn encode(self) -> u8 {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 2,
            Isa::Avx512 => 3,
            Isa::Neon => 4,
        }
    }

    fn decode(v: u8) -> Isa {
        match v {
            2 => Isa::Avx2,
            3 => Isa::Avx512,
            4 => Isa::Neon,
            _ => Isa::Scalar,
        }
    }
}

/// The active ISA, encoded; 0 = not yet initialized.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Best ISA the running host supports, by runtime feature detection.
pub fn detected_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512vl")
            && is_x86_feature_detected!("avx2")
        {
            return Isa::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
    }
    Isa::Scalar
}

/// True when `isa` can run on this host (compiled in *and* detected).
pub fn isa_supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        Isa::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        Isa::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512vl")
                    && is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        Isa::Neon => {
            #[cfg(target_arch = "aarch64")]
            {
                std::arch::is_aarch64_feature_detected!("neon")
            }
            #[cfg(not(target_arch = "aarch64"))]
            {
                false
            }
        }
    }
}

/// The ISA the kernels currently dispatch to.
///
/// Resolved lazily on first use: the `BGLS_ISA` environment variable
/// (`scalar` | `avx2` | `avx512` | `neon`) wins when it names a supported
/// path, otherwise the best detected ISA is used. The choice is cached for
/// the life of the process; tests may override it via [`force_isa`].
pub fn active_isa() -> Isa {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != 0 {
        return Isa::decode(v);
    }
    let choice = std::env::var("BGLS_ISA")
        .ok()
        .and_then(|s| Isa::parse(&s))
        .filter(|&isa| isa_supported(isa))
        .unwrap_or_else(detected_isa);
    ACTIVE.store(choice.encode(), Ordering::Relaxed);
    choice
}

/// Forces the kernels onto `isa`, for tests and benchmarks.
///
/// Fails without changing the active path when the host cannot run `isa`.
/// Because every path is bit-identical, flipping the ISA mid-process never
/// changes numerical results — only throughput.
pub fn force_isa(isa: Isa) -> Result<(), String> {
    if !isa_supported(isa) {
        return Err(format!("ISA {} not supported on this host", isa.name()));
    }
    ACTIVE.store(isa.encode(), Ordering::Relaxed);
    Ok(())
}

/// Views a complex slice as its interleaved `[re, im, ..]` f64 storage.
#[inline]
fn as_f64(s: &[C64]) -> &[f64] {
    // SAFETY: C64 is #[repr(C)] { re: f64, im: f64 }, so a slice of n C64 is
    // layout-identical to a slice of 2n f64 with the same alignment.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast(), s.len() * 2) }
}

/// Mutable variant of [`as_f64`].
#[inline]
fn as_f64_mut(s: &mut [C64]) -> &mut [f64] {
    // SAFETY: as in `as_f64`.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast(), s.len() * 2) }
}

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match active_isa() {
            Isa::Scalar => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: active_isa() only returns Avx2/Avx512 when the host
            // supports the corresponding features.
            Isa::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe { avx512::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: active_isa() only returns Neon when NEON is detected.
            Isa::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Applies a 1q gate (`u = [u00, u01, u10, u11]`) to every amplitude pair
/// split by bit `q` of the index within `s`.
///
/// # Panics
/// Panics unless `s.len()` is a multiple of `2 << q`.
pub fn apply_1q_slice(s: &mut [C64], q: usize, u: &[C64; 4]) {
    assert_eq!(
        s.len() % (2usize << q),
        0,
        "slice not a multiple of 2^(q+1)"
    );
    dispatch!(apply_1q_slice(s, q, u))
}

/// Applies a 1q gate across two equal-length slices: `lo[i]`/`hi[i]` are the
/// bit-clear/bit-set halves of each amplitude pair.
///
/// # Panics
/// Panics unless `lo.len() == hi.len()`.
pub fn apply_1q_pair(lo: &mut [C64], hi: &mut [C64], u: &[C64; 4]) {
    assert_eq!(lo.len(), hi.len(), "pair halves differ in length");
    dispatch!(apply_1q_pair(lo, hi, u))
}

/// Applies a 2q gate (row-major 4×4 `u`; gate bit 1 = index bit `qh`, gate
/// bit 0 = index bit `ql`) within `s`.
///
/// # Panics
/// Panics unless `ql < qh` and `s.len()` is a multiple of `2 << qh`.
pub fn apply_2q_slice(s: &mut [C64], qh: usize, ql: usize, u: &[C64; 16]) {
    assert!(ql < qh, "2q kernel requires ql < qh");
    assert_eq!(
        s.len() % (2usize << qh),
        0,
        "slice not a multiple of 2^(qh+1)"
    );
    dispatch!(apply_2q_slice(s, qh, ql, u))
}

/// Applies a 2q gate whose high gate bit selects between two equal-length
/// slices (`lo` = bit clear, `hi` = bit set) and whose low gate bit is index
/// bit `ql` within each slice.
///
/// # Panics
/// Panics unless the slices match in length and that length is a multiple of
/// `2 << ql`.
pub fn apply_2q_pair(lo: &mut [C64], hi: &mut [C64], ql: usize, u: &[C64; 16]) {
    assert_eq!(lo.len(), hi.len(), "pair halves differ in length");
    assert_eq!(
        lo.len() % (2usize << ql),
        0,
        "slice not a multiple of 2^(ql+1)"
    );
    dispatch!(apply_2q_pair(lo, hi, ql, u))
}

/// Applies a 2q gate elementwise across four equal-length slices, one per
/// gate basis index (`a00` = both bits clear, `a01` = low bit set, `a10` =
/// high bit set, `a11` = both set).
///
/// # Panics
/// Panics unless all four slices have equal length.
pub fn apply_2q_quad(
    a00: &mut [C64],
    a01: &mut [C64],
    a10: &mut [C64],
    a11: &mut [C64],
    u: &[C64; 16],
) {
    assert!(
        a00.len() == a01.len() && a00.len() == a10.len() && a00.len() == a11.len(),
        "quad slices differ in length"
    );
    dispatch!(apply_2q_quad(a00, a01, a10, a11, u))
}

/// Sum of `|z|^2` over the slice through the canonical 8-lane accumulator
/// (see the module docs) — bit-identical on every ISA path.
pub fn sum_norm_sqr(s: &[C64]) -> f64 {
    dispatch!(sum_norm_sqr(s))
}

/// Scales every amplitude by a real factor.
pub fn scale(s: &mut [C64], k: f64) {
    dispatch!(scale(s, k))
}

/// Canonical portable kernels. Every SIMD module below must match these
/// bit-for-bit; the unit tests enforce it on whatever the host detects.
mod scalar {
    use super::{as_f64, as_f64_mut, C64};

    /// The one complex-product form every path shares:
    /// `(w.re*a.re - w.im*a.im, w.re*a.im + w.im*a.re)`.
    #[inline(always)]
    fn cmul(w: C64, a: C64) -> C64 {
        C64::new(w.re * a.re - w.im * a.im, w.re * a.im + w.im * a.re)
    }

    pub(super) fn apply_1q_slice(s: &mut [C64], q: usize, u: &[C64; 4]) {
        let m = 1usize << q;
        for chunk in s.chunks_exact_mut(m << 1) {
            let (lo, hi) = chunk.split_at_mut(m);
            apply_1q_pair(lo, hi, u);
        }
    }

    pub(super) fn apply_1q_pair(lo: &mut [C64], hi: &mut [C64], u: &[C64; 4]) {
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = cmul(u[0], a0) + cmul(u[1], a1);
            *b = cmul(u[2], a0) + cmul(u[3], a1);
        }
    }

    pub(super) fn apply_2q_slice(s: &mut [C64], qh: usize, ql: usize, u: &[C64; 16]) {
        let mh = 1usize << qh;
        for chunk in s.chunks_exact_mut(mh << 1) {
            let (lo, hi) = chunk.split_at_mut(mh);
            apply_2q_pair(lo, hi, ql, u);
        }
    }

    pub(super) fn apply_2q_pair(lo: &mut [C64], hi: &mut [C64], ql: usize, u: &[C64; 16]) {
        let ml = 1usize << ql;
        for (clo, chi) in lo
            .chunks_exact_mut(ml << 1)
            .zip(hi.chunks_exact_mut(ml << 1))
        {
            let (a00, a01) = clo.split_at_mut(ml);
            let (a10, a11) = chi.split_at_mut(ml);
            apply_2q_quad(a00, a01, a10, a11, u);
        }
    }

    pub(super) fn apply_2q_quad(
        a00: &mut [C64],
        a01: &mut [C64],
        a10: &mut [C64],
        a11: &mut [C64],
        u: &[C64; 16],
    ) {
        for i in 0..a00.len() {
            let x00 = a00[i];
            let x01 = a01[i];
            let x10 = a10[i];
            let x11 = a11[i];
            a00[i] = cmul(u[0], x00) + cmul(u[1], x01) + cmul(u[2], x10) + cmul(u[3], x11);
            a01[i] = cmul(u[4], x00) + cmul(u[5], x01) + cmul(u[6], x10) + cmul(u[7], x11);
            a10[i] = cmul(u[8], x00) + cmul(u[9], x01) + cmul(u[10], x10) + cmul(u[11], x11);
            a11[i] = cmul(u[12], x00) + cmul(u[13], x01) + cmul(u[14], x10) + cmul(u[15], x11);
        }
    }

    /// Shared accumulator epilogue: fold tail elements into the lanes
    /// starting at lane 0, then fold lanes in ascending order.
    #[inline(always)]
    pub(super) fn finish_norm(mut acc: [f64; 8], tail: &[f64]) -> f64 {
        for (j, &x) in tail.iter().enumerate() {
            acc[j] += x * x;
        }
        let mut total = acc[0];
        for lane in &acc[1..] {
            total += *lane;
        }
        total
    }

    pub(super) fn sum_norm_sqr(s: &[C64]) -> f64 {
        let f = as_f64(s);
        let mut acc = [0.0f64; 8];
        let mut chunks = f.chunks_exact(8);
        for ch in &mut chunks {
            for j in 0..8 {
                acc[j] += ch[j] * ch[j];
            }
        }
        finish_norm(acc, chunks.remainder())
    }

    pub(super) fn scale(s: &mut [C64], k: f64) {
        for x in as_f64_mut(s) {
            *x *= k;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{as_f64, as_f64_mut, scalar, C64};
    use std::arch::x86_64::*;

    /// Broadcast pair for one gate coefficient: `(splat(w.re),
    /// [-w.im, +w.im, -w.im, +w.im])`. With [`cmul2`] this evaluates the
    /// canonical complex product on two packed complexes at once.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn coeff(w: C64) -> (__m256d, __m256d) {
        (
            _mm256_set1_pd(w.re),
            _mm256_set_pd(w.im, -w.im, w.im, -w.im),
        )
    }

    /// Per-128-bit-lane coefficients: low lane applies `wl`, high lane `wh`.
    /// Used by the interleaved (q = 0) kernel where the two gate rows live in
    /// one vector.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn coeff2(wl: C64, wh: C64) -> (__m256d, __m256d) {
        (
            _mm256_set_pd(wh.re, wh.re, wl.re, wl.re),
            _mm256_set_pd(wh.im, -wh.im, wl.im, -wl.im),
        )
    }

    /// Canonical complex product of coefficient `(wre, wim)` with two packed
    /// complexes: `a * wre + swap(a) * wim`. No FMA — see the module-level
    /// determinism contract.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn cmul2(a: __m256d, w: (__m256d, __m256d)) -> __m256d {
        _mm256_add_pd(
            _mm256_mul_pd(a, w.0),
            _mm256_mul_pd(_mm256_permute_pd(a, 0b0101), w.1),
        )
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn apply_1q_pair(lo: &mut [C64], hi: &mut [C64], u: &[C64; 4]) {
        let (w00, w01, w10, w11) = (coeff(u[0]), coeff(u[1]), coeff(u[2]), coeff(u[3]));
        let n = lo.len();
        let vec_n = n & !1; // two complexes per vector
        let (lof, hif) = (as_f64_mut(lo), as_f64_mut(hi));
        let mut i = 0;
        while i < vec_n * 2 {
            // SAFETY: i + 4 <= 2 * n, unaligned loads/stores.
            unsafe {
                let a0 = _mm256_loadu_pd(lof.as_ptr().add(i));
                let a1 = _mm256_loadu_pd(hif.as_ptr().add(i));
                let r0 = _mm256_add_pd(cmul2(a0, w00), cmul2(a1, w01));
                let r1 = _mm256_add_pd(cmul2(a0, w10), cmul2(a1, w11));
                _mm256_storeu_pd(lof.as_mut_ptr().add(i), r0);
                _mm256_storeu_pd(hif.as_mut_ptr().add(i), r1);
            }
            i += 4;
        }
        if vec_n < n {
            scalar::apply_1q_pair(&mut lo[vec_n..], &mut hi[vec_n..], u);
        }
    }

    /// Interleaved q = 0 form: each vector holds one `[a0, a1]` pair.
    #[target_feature(enable = "avx2")]
    fn apply_1q_interleaved(s: &mut [C64], u: &[C64; 4]) {
        let wa = coeff2(u[0], u[2]); // column 0, rows (0, 1)
        let wb = coeff2(u[1], u[3]); // column 1, rows (0, 1)
        let f = as_f64_mut(s);
        let mut i = 0;
        while i < f.len() {
            // SAFETY: s.len() is even (pairs), so i + 4 <= f.len().
            unsafe {
                let v = _mm256_loadu_pd(f.as_ptr().add(i));
                let a0 = _mm256_permute2f128_pd(v, v, 0x00);
                let a1 = _mm256_permute2f128_pd(v, v, 0x11);
                let r = _mm256_add_pd(cmul2(a0, wa), cmul2(a1, wb));
                _mm256_storeu_pd(f.as_mut_ptr().add(i), r);
            }
            i += 4;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn apply_1q_slice(s: &mut [C64], q: usize, u: &[C64; 4]) {
        if q == 0 {
            apply_1q_interleaved(s, u);
            return;
        }
        let m = 1usize << q;
        for chunk in s.chunks_exact_mut(m << 1) {
            let (lo, hi) = chunk.split_at_mut(m);
            apply_1q_pair(lo, hi, u);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn apply_2q_quad(
        a00: &mut [C64],
        a01: &mut [C64],
        a10: &mut [C64],
        a11: &mut [C64],
        u: &[C64; 16],
    ) {
        let mut w = [(_mm256_setzero_pd(), _mm256_setzero_pd()); 16];
        for (wi, &c) in w.iter_mut().zip(u.iter()) {
            *wi = coeff(c);
        }
        let n = a00.len();
        let vec_n = n & !1;
        let mut i = 0;
        while i < vec_n * 2 {
            // SAFETY: i + 4 <= 2 * n on all four equal-length streams.
            unsafe {
                let p00 = as_f64_mut(a00).as_mut_ptr().add(i);
                let p01 = as_f64_mut(a01).as_mut_ptr().add(i);
                let p10 = as_f64_mut(a10).as_mut_ptr().add(i);
                let p11 = as_f64_mut(a11).as_mut_ptr().add(i);
                let x00 = _mm256_loadu_pd(p00);
                let x01 = _mm256_loadu_pd(p01);
                let x10 = _mm256_loadu_pd(p10);
                let x11 = _mm256_loadu_pd(p11);
                let mut r0 = cmul2(x00, w[0]);
                r0 = _mm256_add_pd(r0, cmul2(x01, w[1]));
                r0 = _mm256_add_pd(r0, cmul2(x10, w[2]));
                r0 = _mm256_add_pd(r0, cmul2(x11, w[3]));
                let mut r1 = cmul2(x00, w[4]);
                r1 = _mm256_add_pd(r1, cmul2(x01, w[5]));
                r1 = _mm256_add_pd(r1, cmul2(x10, w[6]));
                r1 = _mm256_add_pd(r1, cmul2(x11, w[7]));
                let mut r2 = cmul2(x00, w[8]);
                r2 = _mm256_add_pd(r2, cmul2(x01, w[9]));
                r2 = _mm256_add_pd(r2, cmul2(x10, w[10]));
                r2 = _mm256_add_pd(r2, cmul2(x11, w[11]));
                let mut r3 = cmul2(x00, w[12]);
                r3 = _mm256_add_pd(r3, cmul2(x01, w[13]));
                r3 = _mm256_add_pd(r3, cmul2(x10, w[14]));
                r3 = _mm256_add_pd(r3, cmul2(x11, w[15]));
                _mm256_storeu_pd(p00, r0);
                _mm256_storeu_pd(p01, r1);
                _mm256_storeu_pd(p10, r2);
                _mm256_storeu_pd(p11, r3);
            }
            i += 4;
        }
        if vec_n < n {
            scalar::apply_2q_quad(
                &mut a00[vec_n..],
                &mut a01[vec_n..],
                &mut a10[vec_n..],
                &mut a11[vec_n..],
                u,
            );
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn apply_2q_pair(lo: &mut [C64], hi: &mut [C64], ql: usize, u: &[C64; 16]) {
        if ql == 0 {
            // Interleaved low bit — rare in the sharded layout; the scalar
            // form is bit-identical by contract.
            scalar::apply_2q_pair(lo, hi, ql, u);
            return;
        }
        let ml = 1usize << ql;
        for (clo, chi) in lo
            .chunks_exact_mut(ml << 1)
            .zip(hi.chunks_exact_mut(ml << 1))
        {
            let (a00, a01) = clo.split_at_mut(ml);
            let (a10, a11) = chi.split_at_mut(ml);
            apply_2q_quad(a00, a01, a10, a11, u);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn apply_2q_slice(s: &mut [C64], qh: usize, ql: usize, u: &[C64; 16]) {
        let mh = 1usize << qh;
        for chunk in s.chunks_exact_mut(mh << 1) {
            let (lo, hi) = chunk.split_at_mut(mh);
            apply_2q_pair(lo, hi, ql, u);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sum_norm_sqr(s: &[C64]) -> f64 {
        let f = as_f64(s);
        let n8 = f.len() & !7;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= f.len().
            unsafe {
                let v0 = _mm256_loadu_pd(f.as_ptr().add(i));
                let v1 = _mm256_loadu_pd(f.as_ptr().add(i + 4));
                acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(v0, v0));
                acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(v1, v1));
            }
            i += 8;
        }
        let mut acc = [0.0f64; 8];
        // SAFETY: 4-lane stores into an 8-element array.
        unsafe {
            _mm256_storeu_pd(acc.as_mut_ptr(), acc_lo);
            _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc_hi);
        }
        scalar::finish_norm(acc, &f[n8..])
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn scale(s: &mut [C64], k: f64) {
        let f = as_f64_mut(s);
        let kv = _mm256_set1_pd(k);
        let n4 = f.len() & !3;
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 4 <= f.len().
            unsafe {
                let v = _mm256_loadu_pd(f.as_ptr().add(i));
                _mm256_storeu_pd(f.as_mut_ptr().add(i), _mm256_mul_pd(v, kv));
            }
            i += 4;
        }
        for x in &mut f[n4..] {
            *x *= k;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{as_f64, as_f64_mut, avx2, scalar, C64};
    use std::arch::x86_64::*;

    /// 512-bit coefficient pair — four packed complexes per vector.
    #[target_feature(enable = "avx512f")]
    #[inline]
    fn coeff(w: C64) -> (__m512d, __m512d) {
        (
            _mm512_set1_pd(w.re),
            _mm512_set_pd(w.im, -w.im, w.im, -w.im, w.im, -w.im, w.im, -w.im),
        )
    }

    /// Canonical complex product on four packed complexes; `swap` is the
    /// in-pair re/im exchange.
    #[target_feature(enable = "avx512f")]
    #[inline]
    fn cmul4(a: __m512d, w: (__m512d, __m512d)) -> __m512d {
        _mm512_add_pd(
            _mm512_mul_pd(a, w.0),
            _mm512_mul_pd(_mm512_permute_pd(a, 0b01010101), w.1),
        )
    }

    #[target_feature(enable = "avx512f,avx512vl,avx2")]
    pub(super) fn apply_1q_pair(lo: &mut [C64], hi: &mut [C64], u: &[C64; 4]) {
        let (w00, w01, w10, w11) = (coeff(u[0]), coeff(u[1]), coeff(u[2]), coeff(u[3]));
        let n = lo.len();
        let vec_n = n & !3; // four complexes per vector
        let (lof, hif) = (as_f64_mut(lo), as_f64_mut(hi));
        let mut i = 0;
        while i < vec_n * 2 {
            // SAFETY: i + 8 <= 2 * n.
            unsafe {
                let a0 = _mm512_loadu_pd(lof.as_ptr().add(i));
                let a1 = _mm512_loadu_pd(hif.as_ptr().add(i));
                let r0 = _mm512_add_pd(cmul4(a0, w00), cmul4(a1, w01));
                let r1 = _mm512_add_pd(cmul4(a0, w10), cmul4(a1, w11));
                _mm512_storeu_pd(lof.as_mut_ptr().add(i), r0);
                _mm512_storeu_pd(hif.as_mut_ptr().add(i), r1);
            }
            i += 8;
        }
        if vec_n < n {
            avx2::apply_1q_pair(&mut lo[vec_n..], &mut hi[vec_n..], u);
        }
    }

    #[target_feature(enable = "avx512f,avx512vl,avx2")]
    pub(super) fn apply_1q_slice(s: &mut [C64], q: usize, u: &[C64; 4]) {
        if q < 2 {
            // Stride below one 512-bit vector — the AVX2 forms handle the
            // interleaved and two-wide cases.
            avx2::apply_1q_slice(s, q, u);
            return;
        }
        let m = 1usize << q;
        for chunk in s.chunks_exact_mut(m << 1) {
            let (lo, hi) = chunk.split_at_mut(m);
            apply_1q_pair(lo, hi, u);
        }
    }

    #[target_feature(enable = "avx512f,avx512vl,avx2")]
    pub(super) fn apply_2q_quad(
        a00: &mut [C64],
        a01: &mut [C64],
        a10: &mut [C64],
        a11: &mut [C64],
        u: &[C64; 16],
    ) {
        let mut w = [(_mm512_setzero_pd(), _mm512_setzero_pd()); 16];
        for (wi, &c) in w.iter_mut().zip(u.iter()) {
            *wi = coeff(c);
        }
        let n = a00.len();
        let vec_n = n & !3;
        let mut i = 0;
        while i < vec_n * 2 {
            // SAFETY: i + 8 <= 2 * n on all four equal-length streams.
            unsafe {
                let p00 = as_f64_mut(a00).as_mut_ptr().add(i);
                let p01 = as_f64_mut(a01).as_mut_ptr().add(i);
                let p10 = as_f64_mut(a10).as_mut_ptr().add(i);
                let p11 = as_f64_mut(a11).as_mut_ptr().add(i);
                let x00 = _mm512_loadu_pd(p00);
                let x01 = _mm512_loadu_pd(p01);
                let x10 = _mm512_loadu_pd(p10);
                let x11 = _mm512_loadu_pd(p11);
                let mut r0 = cmul4(x00, w[0]);
                r0 = _mm512_add_pd(r0, cmul4(x01, w[1]));
                r0 = _mm512_add_pd(r0, cmul4(x10, w[2]));
                r0 = _mm512_add_pd(r0, cmul4(x11, w[3]));
                let mut r1 = cmul4(x00, w[4]);
                r1 = _mm512_add_pd(r1, cmul4(x01, w[5]));
                r1 = _mm512_add_pd(r1, cmul4(x10, w[6]));
                r1 = _mm512_add_pd(r1, cmul4(x11, w[7]));
                let mut r2 = cmul4(x00, w[8]);
                r2 = _mm512_add_pd(r2, cmul4(x01, w[9]));
                r2 = _mm512_add_pd(r2, cmul4(x10, w[10]));
                r2 = _mm512_add_pd(r2, cmul4(x11, w[11]));
                let mut r3 = cmul4(x00, w[12]);
                r3 = _mm512_add_pd(r3, cmul4(x01, w[13]));
                r3 = _mm512_add_pd(r3, cmul4(x10, w[14]));
                r3 = _mm512_add_pd(r3, cmul4(x11, w[15]));
                _mm512_storeu_pd(p00, r0);
                _mm512_storeu_pd(p01, r1);
                _mm512_storeu_pd(p10, r2);
                _mm512_storeu_pd(p11, r3);
            }
            i += 8;
        }
        if vec_n < n {
            avx2::apply_2q_quad(
                &mut a00[vec_n..],
                &mut a01[vec_n..],
                &mut a10[vec_n..],
                &mut a11[vec_n..],
                u,
            );
        }
    }

    #[target_feature(enable = "avx512f,avx512vl,avx2")]
    pub(super) fn apply_2q_pair(lo: &mut [C64], hi: &mut [C64], ql: usize, u: &[C64; 16]) {
        if ql == 0 {
            scalar::apply_2q_pair(lo, hi, ql, u);
            return;
        }
        let ml = 1usize << ql;
        for (clo, chi) in lo
            .chunks_exact_mut(ml << 1)
            .zip(hi.chunks_exact_mut(ml << 1))
        {
            let (a00, a01) = clo.split_at_mut(ml);
            let (a10, a11) = chi.split_at_mut(ml);
            apply_2q_quad(a00, a01, a10, a11, u);
        }
    }

    #[target_feature(enable = "avx512f,avx512vl,avx2")]
    pub(super) fn apply_2q_slice(s: &mut [C64], qh: usize, ql: usize, u: &[C64; 16]) {
        let mh = 1usize << qh;
        for chunk in s.chunks_exact_mut(mh << 1) {
            let (lo, hi) = chunk.split_at_mut(mh);
            apply_2q_pair(lo, hi, ql, u);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn sum_norm_sqr(s: &[C64]) -> f64 {
        let f = as_f64(s);
        let n8 = f.len() & !7;
        let mut accv = _mm512_setzero_pd();
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= f.len().
            unsafe {
                let v = _mm512_loadu_pd(f.as_ptr().add(i));
                accv = _mm512_add_pd(accv, _mm512_mul_pd(v, v));
            }
            i += 8;
        }
        let mut acc = [0.0f64; 8];
        // SAFETY: 8-lane store into an 8-element array.
        unsafe {
            _mm512_storeu_pd(acc.as_mut_ptr(), accv);
        }
        scalar::finish_norm(acc, &f[n8..])
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn scale(s: &mut [C64], k: f64) {
        let f = as_f64_mut(s);
        let kv = _mm512_set1_pd(k);
        let n8 = f.len() & !7;
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= f.len().
            unsafe {
                let v = _mm512_loadu_pd(f.as_ptr().add(i));
                _mm512_storeu_pd(f.as_mut_ptr().add(i), _mm512_mul_pd(v, kv));
            }
            i += 8;
        }
        for x in &mut f[n8..] {
            *x *= k;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{as_f64, as_f64_mut, scalar, C64};
    use std::arch::aarch64::*;

    /// Coefficient pair: one complex per 128-bit vector.
    #[target_feature(enable = "neon")]
    #[inline]
    fn coeff(w: C64) -> (float64x2_t, float64x2_t) {
        let re = [w.re, w.re];
        let im = [-w.im, w.im];
        // SAFETY: loads from properly sized stack arrays.
        unsafe { (vld1q_f64(re.as_ptr()), vld1q_f64(im.as_ptr())) }
    }

    /// Canonical complex product on one packed complex.
    #[target_feature(enable = "neon")]
    #[inline]
    fn cmul1(a: float64x2_t, w: (float64x2_t, float64x2_t)) -> float64x2_t {
        vaddq_f64(vmulq_f64(a, w.0), vmulq_f64(vextq_f64(a, a, 1), w.1))
    }

    #[target_feature(enable = "neon")]
    pub(super) fn apply_1q_pair(lo: &mut [C64], hi: &mut [C64], u: &[C64; 4]) {
        let (w00, w01, w10, w11) = (coeff(u[0]), coeff(u[1]), coeff(u[2]), coeff(u[3]));
        let n2 = lo.len() * 2;
        let (lof, hif) = (as_f64_mut(lo), as_f64_mut(hi));
        let mut i = 0;
        while i < n2 {
            // SAFETY: i + 2 <= 2 * n; one complex per vector.
            unsafe {
                let a0 = vld1q_f64(lof.as_ptr().add(i));
                let a1 = vld1q_f64(hif.as_ptr().add(i));
                let r0 = vaddq_f64(cmul1(a0, w00), cmul1(a1, w01));
                let r1 = vaddq_f64(cmul1(a0, w10), cmul1(a1, w11));
                vst1q_f64(lof.as_mut_ptr().add(i), r0);
                vst1q_f64(hif.as_mut_ptr().add(i), r1);
            }
            i += 2;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn apply_1q_slice(s: &mut [C64], q: usize, u: &[C64; 4]) {
        let m = 1usize << q;
        for chunk in s.chunks_exact_mut(m << 1) {
            let (lo, hi) = chunk.split_at_mut(m);
            apply_1q_pair(lo, hi, u);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn apply_2q_quad(
        a00: &mut [C64],
        a01: &mut [C64],
        a10: &mut [C64],
        a11: &mut [C64],
        u: &[C64; 16],
    ) {
        let mut w = [(vdupq_n_f64(0.0), vdupq_n_f64(0.0)); 16];
        for (wi, &c) in w.iter_mut().zip(u.iter()) {
            *wi = coeff(c);
        }
        let n2 = a00.len() * 2;
        let mut i = 0;
        while i < n2 {
            // SAFETY: i + 2 <= 2 * n on all four equal-length streams.
            unsafe {
                let p00 = as_f64_mut(a00).as_mut_ptr().add(i);
                let p01 = as_f64_mut(a01).as_mut_ptr().add(i);
                let p10 = as_f64_mut(a10).as_mut_ptr().add(i);
                let p11 = as_f64_mut(a11).as_mut_ptr().add(i);
                let x00 = vld1q_f64(p00);
                let x01 = vld1q_f64(p01);
                let x10 = vld1q_f64(p10);
                let x11 = vld1q_f64(p11);
                let mut r0 = cmul1(x00, w[0]);
                r0 = vaddq_f64(r0, cmul1(x01, w[1]));
                r0 = vaddq_f64(r0, cmul1(x10, w[2]));
                r0 = vaddq_f64(r0, cmul1(x11, w[3]));
                let mut r1 = cmul1(x00, w[4]);
                r1 = vaddq_f64(r1, cmul1(x01, w[5]));
                r1 = vaddq_f64(r1, cmul1(x10, w[6]));
                r1 = vaddq_f64(r1, cmul1(x11, w[7]));
                let mut r2 = cmul1(x00, w[8]);
                r2 = vaddq_f64(r2, cmul1(x01, w[9]));
                r2 = vaddq_f64(r2, cmul1(x10, w[10]));
                r2 = vaddq_f64(r2, cmul1(x11, w[11]));
                let mut r3 = cmul1(x00, w[12]);
                r3 = vaddq_f64(r3, cmul1(x01, w[13]));
                r3 = vaddq_f64(r3, cmul1(x10, w[14]));
                r3 = vaddq_f64(r3, cmul1(x11, w[15]));
                vst1q_f64(p00, r0);
                vst1q_f64(p01, r1);
                vst1q_f64(p10, r2);
                vst1q_f64(p11, r3);
            }
            i += 2;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn apply_2q_pair(lo: &mut [C64], hi: &mut [C64], ql: usize, u: &[C64; 16]) {
        if ql == 0 {
            scalar::apply_2q_pair(lo, hi, ql, u);
            return;
        }
        let ml = 1usize << ql;
        for (clo, chi) in lo
            .chunks_exact_mut(ml << 1)
            .zip(hi.chunks_exact_mut(ml << 1))
        {
            let (a00, a01) = clo.split_at_mut(ml);
            let (a10, a11) = chi.split_at_mut(ml);
            apply_2q_quad(a00, a01, a10, a11, u);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn apply_2q_slice(s: &mut [C64], qh: usize, ql: usize, u: &[C64; 16]) {
        let mh = 1usize << qh;
        for chunk in s.chunks_exact_mut(mh << 1) {
            let (lo, hi) = chunk.split_at_mut(mh);
            apply_2q_pair(lo, hi, ql, u);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) fn sum_norm_sqr(s: &[C64]) -> f64 {
        let f = as_f64(s);
        let n8 = f.len() & !7;
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let mut acc2 = vdupq_n_f64(0.0);
        let mut acc3 = vdupq_n_f64(0.0);
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= f.len().
            unsafe {
                let v0 = vld1q_f64(f.as_ptr().add(i));
                let v1 = vld1q_f64(f.as_ptr().add(i + 2));
                let v2 = vld1q_f64(f.as_ptr().add(i + 4));
                let v3 = vld1q_f64(f.as_ptr().add(i + 6));
                acc0 = vaddq_f64(acc0, vmulq_f64(v0, v0));
                acc1 = vaddq_f64(acc1, vmulq_f64(v1, v1));
                acc2 = vaddq_f64(acc2, vmulq_f64(v2, v2));
                acc3 = vaddq_f64(acc3, vmulq_f64(v3, v3));
            }
            i += 8;
        }
        let mut acc = [0.0f64; 8];
        // SAFETY: 2-lane stores covering an 8-element array.
        unsafe {
            vst1q_f64(acc.as_mut_ptr(), acc0);
            vst1q_f64(acc.as_mut_ptr().add(2), acc1);
            vst1q_f64(acc.as_mut_ptr().add(4), acc2);
            vst1q_f64(acc.as_mut_ptr().add(6), acc3);
        }
        scalar::finish_norm(acc, &f[n8..])
    }

    #[target_feature(enable = "neon")]
    pub(super) fn scale(s: &mut [C64], k: f64) {
        let f = as_f64_mut(s);
        let kv = vdupq_n_f64(k);
        let n2 = f.len() & !1;
        let mut i = 0;
        while i < n2 {
            // SAFETY: i + 2 <= f.len().
            unsafe {
                let v = vld1q_f64(f.as_ptr().add(i));
                vst1q_f64(f.as_mut_ptr().add(i), vmulq_f64(v, kv));
            }
            i += 2;
        }
        for x in &mut f[n2..] {
            *x *= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global active ISA.
    static ISA_LOCK: Mutex<()> = Mutex::new(());

    fn rng_amps(len: usize, seed: u64) -> Vec<C64> {
        // Small deterministic LCG — keeps the linalg crate free of the rand
        // dev-dependency plumbing used elsewhere.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..len).map(|_| C64::new(next(), next())).collect()
    }

    fn test_matrix_1q(seed: u64) -> [C64; 4] {
        let v = rng_amps(4, seed);
        [v[0], v[1], v[2], v[3]]
    }

    fn test_matrix_2q(seed: u64) -> [C64; 16] {
        let v = rng_amps(16, seed);
        let mut u = [C64::ZERO; 16];
        u.copy_from_slice(&v);
        u
    }

    fn bits(s: &[C64]) -> Vec<(u64, u64)> {
        s.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
    }

    /// Runs `f` under every supported ISA and asserts all outputs match the
    /// scalar path bit-for-bit.
    fn assert_isa_bit_identical<F: Fn() -> Vec<(u64, u64)>>(f: F) {
        let _guard = ISA_LOCK.lock().unwrap();
        force_isa(Isa::Scalar).unwrap();
        let reference = f();
        for isa in [Isa::Avx2, Isa::Avx512, Isa::Neon] {
            if !isa_supported(isa) {
                continue;
            }
            force_isa(isa).unwrap();
            let got = f();
            assert_eq!(got, reference, "ISA {} diverged from scalar", isa.name());
        }
        force_isa(detected_isa()).unwrap();
    }

    #[test]
    fn one_qubit_kernels_bit_identical_across_isas() {
        for q in 0..6 {
            let base = rng_amps(1 << 7, 11 + q as u64);
            let u = test_matrix_1q(3 + q as u64);
            assert_isa_bit_identical(|| {
                let mut s = base.clone();
                apply_1q_slice(&mut s, q, &u);
                bits(&s)
            });
        }
        // Odd pair length exercises the SIMD tails.
        let lo0 = rng_amps(33, 21);
        let hi0 = rng_amps(33, 22);
        let u = test_matrix_1q(5);
        assert_isa_bit_identical(|| {
            let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
            apply_1q_pair(&mut lo, &mut hi, &u);
            let mut out = bits(&lo);
            out.extend(bits(&hi));
            out
        });
    }

    #[test]
    fn two_qubit_kernels_bit_identical_across_isas() {
        let u = test_matrix_2q(7);
        for qh in 1..7 {
            for ql in 0..qh {
                let base = rng_amps(1 << 8, 40 + (qh * 8 + ql) as u64);
                assert_isa_bit_identical(|| {
                    let mut s = base.clone();
                    apply_2q_slice(&mut s, qh, ql, &u);
                    bits(&s)
                });
            }
        }
        let a = rng_amps(4 * 37, 61); // non-multiple-of-4 quad length
        assert_isa_bit_identical(|| {
            let mut v = a.clone();
            let (q0, rest) = v.split_at_mut(37);
            let (q1, rest) = rest.split_at_mut(37);
            let (q2, q3) = rest.split_at_mut(37);
            apply_2q_quad(q0, q1, q2, q3, &u);
            bits(&v)
        });
    }

    #[test]
    fn reductions_bit_identical_across_isas() {
        for len in [0usize, 1, 5, 8, 64, 1000, 4096] {
            let s = rng_amps(len, 100 + len as u64);
            assert_isa_bit_identical(|| {
                let total = sum_norm_sqr(&s);
                vec![(total.to_bits(), 0)]
            });
            assert_isa_bit_identical(|| {
                let mut v = s.clone();
                scale(&mut v, 0.8125);
                bits(&v)
            });
        }
    }

    #[test]
    fn norm_matches_plain_sum() {
        let s = rng_amps(999, 5);
        let plain: f64 = s.iter().map(|z| z.norm_sqr()).sum();
        let lanes = {
            let _guard = ISA_LOCK.lock().unwrap();
            force_isa(Isa::Scalar).unwrap();
            let v = sum_norm_sqr(&s);
            force_isa(detected_isa()).unwrap();
            v
        };
        assert!((plain - lanes).abs() <= 1e-12 * plain.max(1.0));
    }

    #[test]
    fn one_qubit_matches_direct_formula() {
        let _guard = ISA_LOCK.lock().unwrap();
        force_isa(Isa::Scalar).unwrap();
        let u = test_matrix_1q(9);
        let mut s = rng_amps(8, 10);
        let orig = s.clone();
        apply_1q_slice(&mut s, 1, &u);
        for chunk in 0..2 {
            for i in 0..2 {
                let a0 = orig[chunk * 4 + i];
                let a1 = orig[chunk * 4 + i + 2];
                let want0 = u[0] * a0 + u[1] * a1;
                let want1 = u[2] * a0 + u[3] * a1;
                assert_eq!(s[chunk * 4 + i], want0);
                assert_eq!(s[chunk * 4 + i + 2], want1);
            }
        }
        force_isa(detected_isa()).unwrap();
    }

    #[test]
    fn force_isa_rejects_unsupported() {
        let _guard = ISA_LOCK.lock().unwrap();
        #[cfg(target_arch = "x86_64")]
        assert!(force_isa(Isa::Neon).is_err());
        #[cfg(target_arch = "aarch64")]
        assert!(force_isa(Isa::Avx512).is_err());
        assert!(force_isa(Isa::Scalar).is_ok());
        assert_eq!(active_isa(), Isa::Scalar);
        force_isa(detected_isa()).unwrap();
    }
}

//! Property tests for the blocked GEMM layer and the no-copy tensor
//! contraction: random shapes (including non-power-of-two and
//! degenerate `1 x k`) must reproduce the naive ascending-`k` fold bit
//! for bit, serial or parallel.

use bgls_linalg::{gemm, Matrix, Tensor, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Force a multi-thread Rayon pool (the vendored stand-in caches the
/// count on first use) so the parallel row-block path genuinely runs
/// across threads even on single-core CI runners. Every test in this
/// binary sets the same value, so ordering does not matter.
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Random nonzero entries: keeps the bitwise comparison meaningful (the
/// packed kernel multiplies structural zeros the naive skip elides,
/// which can flip the sign of an exact zero — invisible to every
/// consumer, but a `to_bits` mismatch here).
fn fill(rng: &mut StdRng, len: usize) -> Vec<C64> {
    (0..len)
        .map(|_| {
            let re: f64 = rng.gen_range(0.1..1.0);
            let im: f64 = rng.gen_range(0.1..1.0);
            C64::new(
                if rng.gen::<bool>() { re } else { -re },
                if rng.gen::<bool>() { im } else { -im },
            )
        })
        .collect()
}

/// The reference semantics: per output element, fold `k` in ascending
/// order with the `C64::mul_add` expressions.
fn naive_gemm(m: usize, k: usize, n: usize, a: &[C64], b: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] = av.mul_add(b[kk * n + j], out[i * n + j]);
            }
        }
    }
    out
}

fn assert_bits_eq(got: &[C64], want: &[C64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (t, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.re.to_bits() == w.re.to_bits() && g.im.to_bits() == w.im.to_bits(),
            "{ctx}: entry {t}: got {g:?}, want {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM (naive, packed, and parallel row-block paths,
    /// depending on shape) is bit-identical to the sequential fold on
    /// arbitrary shapes, including degenerate `1 x k` and non-powers
    /// of two.
    #[test]
    fn gemm_matches_naive_fold(seed in 0u64..10_000, m in 1usize..70, k in 1usize..80, n in 1usize..70) {
        force_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let got = gemm::matmul(m, k, n, &a, &b);
        assert_bits_eq(&got, &naive_gemm(m, k, n, &a, &b), &format!("{m}x{k}x{n}"));
    }

    /// Shapes past the parallel threshold fan output rows across
    /// Rayon; results must stay bit-identical to the sequential fold
    /// for any thread count.
    #[test]
    fn parallel_gemm_is_bit_identical_to_serial(seed in 0u64..1_000) {
        force_threads();
        let (m, k, n) = (150usize, 70usize, 110usize); // m*k*n > 1<<20, m > MC
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let got = gemm::matmul(m, k, n, &a, &b);
        assert_bits_eq(&got, &naive_gemm(m, k, n, &a, &b), "parallel");
    }

    /// Blocked matvec (and its parallel row chunks) is bit-identical to
    /// the per-row ascending fold.
    #[test]
    fn matvec_matches_fold(seed in 0u64..10_000, m in 1usize..90, k in 1usize..90) {
        force_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let x = fill(&mut rng, k);
        let mat = Matrix::from_vec(m, k, a.clone());
        let got = mat.matvec(&x);
        let want: Vec<C64> = (0..m)
            .map(|i| (0..k).fold(C64::ZERO, |acc, j| a[i * k + j].mul_add(x[j], acc)))
            .collect();
        assert_bits_eq(&got, &want, "matvec");
    }

    /// The no-copy gather contraction reproduces the historical
    /// permute-then-multiply path bit for bit on random tensor pairs
    /// with random shared-label subsets.
    #[test]
    fn contract_matches_permute_reference(
        seed in 0u64..10_000,
        rank_a in 1usize..5,
        rank_b in 1usize..5,
        shared in 1usize..4,
    ) {
        force_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = shared.min(rank_a).min(rank_b);
        // Shared labels 100.. with random dims; free labels disjoint.
        // Dims up to 9 so a fair share of cases clear the packed-path
        // thresholds (k >= 8, n >= NR, m*k*n >= 4096) and exercise the
        // gather packing and the contiguous fast path, not just the
        // naive gather fold.
        let shared_dims: Vec<usize> = (0..shared).map(|_| rng.gen_range(1..10)).collect();
        let a_free_dims: Vec<usize> = (shared..rank_a).map(|_| rng.gen_range(1..10)).collect();
        let b_free_dims: Vec<usize> = (shared..rank_b).map(|_| rng.gen_range(1..10)).collect();

        let mut a_labels: Vec<u32> = (0..shared as u32).map(|t| 100 + t).collect();
        a_labels.extend((0..a_free_dims.len() as u32).map(|t| 200 + t));
        let mut a_shape = shared_dims.clone();
        a_shape.extend(&a_free_dims);
        // Shuffle axes so the gather path sees nontrivial strides.
        let mut axes: Vec<usize> = (0..a_labels.len()).collect();
        for i in (1..axes.len()).rev() {
            axes.swap(i, rng.gen_range(0..i + 1));
        }
        let a_labels: Vec<u32> = axes.iter().map(|&t| a_labels[t]).collect();
        let a_shape: Vec<usize> = axes.iter().map(|&t| a_shape[t]).collect();

        let mut b_labels: Vec<u32> = (0..shared as u32).map(|t| 100 + t).collect();
        b_labels.extend((0..b_free_dims.len() as u32).map(|t| 300 + t));
        let mut b_shape = shared_dims.clone();
        b_shape.extend(&b_free_dims);
        let mut axes: Vec<usize> = (0..b_labels.len()).collect();
        for i in (1..axes.len()).rev() {
            axes.swap(i, rng.gen_range(0..i + 1));
        }
        let b_labels: Vec<u32> = axes.iter().map(|&t| b_labels[t]).collect();
        let b_shape: Vec<usize> = axes.iter().map(|&t| b_shape[t]).collect();

        let a_len: usize = a_shape.iter().product();
        let b_len: usize = b_shape.iter().product();
        let ta = Tensor::new(a_labels.clone(), a_shape, fill(&mut rng, a_len));
        let tb = Tensor::new(b_labels.clone(), b_shape, fill(&mut rng, b_len));

        let got = ta.contract(&tb);

        // Reference: permute shared axes trailing/leading, then naive GEMM.
        let shared_l: Vec<u32> = a_labels
            .iter()
            .copied()
            .filter(|l| b_labels.contains(l))
            .collect();
        let a_free: Vec<u32> = a_labels
            .iter()
            .copied()
            .filter(|l| !shared_l.contains(l))
            .collect();
        let b_free: Vec<u32> = b_labels
            .iter()
            .copied()
            .filter(|l| !shared_l.contains(l))
            .collect();
        let a_order: Vec<u32> = a_free.iter().chain(&shared_l).copied().collect();
        let b_order: Vec<u32> = shared_l.iter().chain(&b_free).copied().collect();
        let pa = ta.permute(&a_order);
        let pb = tb.permute(&b_order);
        let k: usize = shared_l.iter().map(|&l| ta.dim_of(l).unwrap()).product();
        let m = pa.size() / k.max(1);
        let n = pb.size() / k.max(1);
        let want = naive_gemm(m, k, n, pa.data(), pb.data());

        prop_assert_eq!(got.labels(), &a_free.iter().chain(&b_free).copied().collect::<Vec<_>>()[..]);
        assert_bits_eq(got.data(), &want, "contract");
    }
}

//! Property test: QASM export -> import preserves circuit semantics for
//! every exportable random circuit.

use bgls_circuit::{
    from_qasm, generate_random_circuit, observable_pragmas, to_qasm, to_qasm_with_observables,
    Gate, PauliOp, PauliString, PauliSum, RandomCircuitParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exportable_gate_pool() -> Vec<Gate> {
    vec![
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::SqrtX,
        Gate::SqrtXDag,
        Gate::Rx(0.123.into()),
        Gate::Ry((-1.7).into()),
        Gate::Rz(2.9.into()),
        Gate::ZPow(0.31.into()),
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
        Gate::CPhase(0.77.into()),
        Gate::Rzz(1.21.into()),
        Gate::Ccx,
        Gate::Cswap,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn qasm_round_trip_preserves_unitary(
        seed in 0u64..100_000,
        n in 3usize..6,
        moments in 1usize..10,
    ) {
        let params = RandomCircuitParams {
            qubits: n,
            moments,
            op_density: 0.8,
            gate_set: exportable_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let qasm = to_qasm(&circuit).expect("exportable pool");
        let back = from_qasm(&qasm).expect("own output must parse");
        prop_assert_eq!(back.num_operations(), circuit.num_operations());
        let u1 = circuit.unitary(n).unwrap();
        let u2 = back.unitary(n).unwrap();
        prop_assert!(u1.approx_eq(&u2, 1e-9), "unitary drifted through QASM");
    }

    #[test]
    fn qasm_double_round_trip_is_stable(seed in 0u64..100_000) {
        let params = RandomCircuitParams {
            qubits: 4,
            moments: 6,
            op_density: 1.0,
            gate_set: exportable_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let q1 = to_qasm(&circuit).unwrap();
        let q2 = to_qasm(&from_qasm(&q1).unwrap()).unwrap();
        prop_assert_eq!(q1, q2, "export must be a fixed point after one trip");
    }

    #[test]
    fn observable_pragma_round_trips_random_pauli_sums(
        seed in 0u64..100_000,
        terms in 1usize..5,
        n in 1usize..6,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = PauliSum::new();
        for _ in 0..terms {
            // coefficients with plenty of mantissa to stress Display
            let coeff = rng.gen_range(-10.0..10.0) * 0.123456789;
            let string = PauliString::from_ops((0..n).filter_map(|q| {
                match rng.gen_range(0..4u8) {
                    0 => None,
                    1 => Some((q, PauliOp::X)),
                    2 => Some((q, PauliOp::Y)),
                    _ => Some((q, PauliOp::Z)),
                }
            })).unwrap();
            sum.add_term(bgls_linalg::C64::real(coeff), string);
        }
        if sum.is_zero() {
            return Ok(()); // merged terms cancelled; nothing to emit
        }
        let params = RandomCircuitParams {
            qubits: n, moments: 2, op_density: 0.8,
            gate_set: exportable_gate_pool(),
        };
        let circuit = generate_random_circuit(&params, &mut rng);
        let qasm = to_qasm_with_observables(&circuit, std::slice::from_ref(&sum)).unwrap();
        // the pragma never perturbs the circuit itself
        prop_assert_eq!(
            from_qasm(&qasm).unwrap().num_operations(),
            circuit.num_operations()
        );
        let got = observable_pragmas(&qasm).unwrap();
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].num_terms(), sum.num_terms());
        for ((ca, pa), (cb, pb)) in got[0].terms().iter().zip(sum.terms()) {
            prop_assert_eq!(pa, pb, "Pauli strings must round-trip exactly");
            prop_assert!(
                (ca.re - cb.re).abs() <= 1e-12 * cb.re.abs().max(1.0),
                "coefficient drifted: {} vs {}", ca.re, cb.re
            );
        }
    }
}

//! Property test: QASM export -> import preserves circuit semantics for
//! every exportable random circuit.

use bgls_circuit::{from_qasm, generate_random_circuit, to_qasm, Gate, RandomCircuitParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exportable_gate_pool() -> Vec<Gate> {
    vec![
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::SqrtX,
        Gate::SqrtXDag,
        Gate::Rx(0.123.into()),
        Gate::Ry((-1.7).into()),
        Gate::Rz(2.9.into()),
        Gate::ZPow(0.31.into()),
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
        Gate::CPhase(0.77.into()),
        Gate::Rzz(1.21.into()),
        Gate::Ccx,
        Gate::Cswap,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn qasm_round_trip_preserves_unitary(
        seed in 0u64..100_000,
        n in 3usize..6,
        moments in 1usize..10,
    ) {
        let params = RandomCircuitParams {
            qubits: n,
            moments,
            op_density: 0.8,
            gate_set: exportable_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let qasm = to_qasm(&circuit).expect("exportable pool");
        let back = from_qasm(&qasm).expect("own output must parse");
        prop_assert_eq!(back.num_operations(), circuit.num_operations());
        let u1 = circuit.unitary(n).unwrap();
        let u2 = back.unitary(n).unwrap();
        prop_assert!(u1.approx_eq(&u2, 1e-9), "unitary drifted through QASM");
    }

    #[test]
    fn qasm_double_round_trip_is_stable(seed in 0u64..100_000) {
        let params = RandomCircuitParams {
            qubits: 4,
            moments: 6,
            op_density: 1.0,
            gate_set: exportable_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let q1 = to_qasm(&circuit).unwrap();
        let q2 = to_qasm(&from_qasm(&q1).unwrap()).unwrap();
        prop_assert_eq!(q1, q2, "export must be a fixed point after one trip");
    }
}

//! Operations: a gate, measurement, or channel applied to specific qubits.

use crate::channel::Channel;
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::param::ParamResolver;
use crate::qubit::Qubit;
use std::fmt;
use std::sync::Arc;

/// What an [`Operation`] does to its qubits.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// A unitary gate.
    Gate(Gate),
    /// A computational-basis measurement recorded under `key`.
    Measure {
        /// Result key (the Cirq measurement-key substitute).
        key: Arc<str>,
    },
    /// A Kraus channel (simulated by trajectories).
    Channel(Arc<Channel>),
}

/// An operation applied to an ordered list of distinct qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// What is applied.
    pub kind: OpKind,
    /// The qubits acted on, in gate-matrix order (first = most significant).
    pub qubits: Vec<Qubit>,
}

impl Operation {
    /// Applies `gate` to `qubits`, validating arity and distinctness.
    pub fn gate(gate: Gate, qubits: impl Into<Vec<Qubit>>) -> Result<Self, CircuitError> {
        let qubits = qubits.into();
        if gate.arity() != qubits.len() {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name().to_string(),
                expected: gate.arity(),
                got: qubits.len(),
            });
        }
        check_distinct(&qubits, gate.name())?;
        Ok(Operation {
            kind: OpKind::Gate(gate),
            qubits,
        })
    }

    /// Measures `qubits` in the computational basis under `key`.
    pub fn measure(qubits: impl Into<Vec<Qubit>>, key: &str) -> Result<Self, CircuitError> {
        let qubits = qubits.into();
        if qubits.is_empty() {
            return Err(CircuitError::Invalid("measurement of zero qubits".into()));
        }
        check_distinct(&qubits, "measure")?;
        Ok(Operation {
            kind: OpKind::Measure {
                key: Arc::from(key),
            },
            qubits,
        })
    }

    /// Applies `channel` to `qubits`.
    pub fn channel(channel: Channel, qubits: impl Into<Vec<Qubit>>) -> Result<Self, CircuitError> {
        let qubits = qubits.into();
        if channel.arity() != qubits.len() {
            return Err(CircuitError::ArityMismatch {
                gate: channel.name().to_string(),
                expected: channel.arity(),
                got: qubits.len(),
            });
        }
        check_distinct(&qubits, channel.name())?;
        Ok(Operation {
            kind: OpKind::Channel(Arc::new(channel)),
            qubits,
        })
    }

    /// The qubits the operation acts on — the gate-by-gate algorithm's
    /// *support* (paper Sec. 2).
    #[inline]
    pub fn support(&self) -> &[Qubit] {
        &self.qubits
    }

    /// True for unitary gates (not measurements or channels).
    pub fn is_unitary(&self) -> bool {
        matches!(self.kind, OpKind::Gate(_))
    }

    /// True for measurements.
    pub fn is_measurement(&self) -> bool {
        matches!(self.kind, OpKind::Measure { .. })
    }

    /// True for Kraus channels.
    pub fn is_channel(&self) -> bool {
        matches!(self.kind, OpKind::Channel(_))
    }

    /// The gate, when the operation is one.
    pub fn as_gate(&self) -> Option<&Gate> {
        match &self.kind {
            OpKind::Gate(g) => Some(g),
            _ => None,
        }
    }

    /// True when the operation carries an unresolved symbolic parameter.
    pub fn is_parameterized(&self) -> bool {
        match &self.kind {
            OpKind::Gate(g) => g.is_parameterized(),
            _ => false,
        }
    }

    /// Resolves symbolic parameters.
    pub fn resolve(&self, resolver: &ParamResolver) -> Operation {
        match &self.kind {
            OpKind::Gate(g) => Operation {
                kind: OpKind::Gate(g.resolve(resolver)),
                qubits: self.qubits.clone(),
            },
            _ => self.clone(),
        }
    }

    /// The inverse operation (gates only).
    pub fn inverse(&self) -> Result<Operation, CircuitError> {
        match &self.kind {
            OpKind::Gate(g) => Ok(Operation {
                kind: OpKind::Gate(g.inverse()?),
                qubits: self.qubits.clone(),
            }),
            OpKind::Measure { key } => Err(CircuitError::NonUnitaryOperation(format!(
                "measure('{key}')"
            ))),
            OpKind::Channel(c) => Err(CircuitError::NonUnitaryOperation(c.name().to_string())),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match &self.kind {
            OpKind::Gate(g) => g.name().to_string(),
            OpKind::Measure { key } => format!("measure['{key}']"),
            OpKind::Channel(c) => c.name().to_string(),
        };
        write!(f, "{name}(")?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, ")")
    }
}

fn check_distinct(qubits: &[Qubit], what: &str) -> Result<(), CircuitError> {
    for (i, q) in qubits.iter().enumerate() {
        if qubits[..i].contains(q) {
            return Err(CircuitError::DuplicateQubit(what.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    #[test]
    fn gate_op_validates_arity() {
        let err = Operation::gate(Gate::Cnot, vec![Qubit(0)]);
        assert!(matches!(err, Err(CircuitError::ArityMismatch { .. })));
        let ok = Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap();
        assert_eq!(ok.support(), &[Qubit(0), Qubit(1)]);
    }

    #[test]
    fn duplicate_qubits_rejected() {
        let err = Operation::gate(Gate::Cnot, vec![Qubit(2), Qubit(2)]);
        assert!(matches!(err, Err(CircuitError::DuplicateQubit(_))));
        let err = Operation::measure(vec![Qubit(1), Qubit(1)], "m");
        assert!(matches!(err, Err(CircuitError::DuplicateQubit(_))));
    }

    #[test]
    fn kind_predicates() {
        let g = Operation::gate(Gate::H, vec![Qubit(0)]).unwrap();
        assert!(g.is_unitary() && !g.is_measurement() && !g.is_channel());
        let m = Operation::measure(vec![Qubit(0)], "z").unwrap();
        assert!(m.is_measurement() && !m.is_unitary());
        let c = Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap();
        assert!(c.is_channel() && !c.is_unitary());
    }

    #[test]
    fn inverse_of_measurement_fails() {
        let m = Operation::measure(vec![Qubit(0)], "z").unwrap();
        assert!(matches!(
            m.inverse(),
            Err(CircuitError::NonUnitaryOperation(_))
        ));
    }

    #[test]
    fn resolve_touches_only_gates() {
        let op = Operation::gate(Gate::Rz(Param::symbol("a")), vec![Qubit(0)]).unwrap();
        assert!(op.is_parameterized());
        let r = ParamResolver::from_pairs([("a", 1.0)]);
        assert!(!op.resolve(&r).is_parameterized());
    }

    #[test]
    fn display_formats_readably() {
        let op = Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(3)]).unwrap();
        assert_eq!(format!("{op}"), "cx(q0, q3)");
    }

    #[test]
    fn empty_measurement_rejected() {
        assert!(Operation::measure(Vec::<Qubit>::new(), "k").is_err());
    }
}

//! Error type shared across the circuit IR.

use std::fmt;

/// Errors raised while building, transforming, or exporting circuits.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitError {
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// Gate name.
        gate: String,
        /// Number of qubits the gate acts on.
        expected: usize,
        /// Number of qubits supplied.
        got: usize,
    },
    /// An operation references the same qubit twice.
    DuplicateQubit(String),
    /// A symbolic parameter was used where a concrete value is required.
    UnresolvedParameter(String),
    /// A matrix supplied as a gate is not unitary.
    NotUnitary(String),
    /// A set of Kraus operators is not trace preserving.
    InvalidChannel(String),
    /// QASM parsing failed.
    QasmParse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A construct has no QASM representation.
    QasmUnsupported(String),
    /// The requested operation needs a gate to expose a unitary (e.g.
    /// inverting a measurement).
    NonUnitaryOperation(String),
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ArityMismatch {
                gate,
                expected,
                got,
            } => write!(f, "gate {gate} acts on {expected} qubits, got {got}"),
            CircuitError::DuplicateQubit(op) => {
                write!(f, "operation {op} addresses a qubit more than once")
            }
            CircuitError::UnresolvedParameter(s) => {
                write!(
                    f,
                    "parameter '{s}' is unresolved; bind it with a ParamResolver"
                )
            }
            CircuitError::NotUnitary(what) => write!(f, "matrix for {what} is not unitary"),
            CircuitError::InvalidChannel(what) => {
                write!(f, "Kraus operators for {what} do not sum to identity")
            }
            CircuitError::QasmParse { line, message } => {
                write!(f, "QASM parse error at line {line}: {message}")
            }
            CircuitError::QasmUnsupported(what) => {
                write!(f, "no QASM representation for {what}")
            }
            CircuitError::NonUnitaryOperation(what) => {
                write!(f, "operation {what} is not unitary")
            }
            CircuitError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CircuitError {}

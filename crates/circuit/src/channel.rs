//! Non-unitary operations: Kraus channels for noisy simulation.
//!
//! BGLS supports noise through quantum trajectories (paper Sec. 3.2.1); a
//! channel is a set of Kraus operators `{K_i}` with
//! `sum_i K_i^dagger K_i = I`.

use crate::error::CircuitError;
use bgls_linalg::{Matrix, C64};

/// A completely-positive trace-preserving map given by Kraus operators.
#[derive(Clone, Debug, PartialEq)]
pub struct Channel {
    name: String,
    arity: usize,
    kraus: Vec<Matrix>,
}

impl Channel {
    /// Builds a channel from explicit Kraus operators, validating
    /// completeness (`sum K^dagger K = I` within `1e-9`).
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        kraus: Vec<Matrix>,
    ) -> Result<Self, CircuitError> {
        let name = name.into();
        let dim = 1usize << arity;
        if kraus.is_empty() {
            return Err(CircuitError::InvalidChannel(name));
        }
        let mut sum = Matrix::zeros(dim, dim);
        for k in &kraus {
            if k.rows() != dim || k.cols() != dim {
                return Err(CircuitError::Invalid(format!(
                    "Kraus operator for {name} is {}x{}, expected {dim}x{dim}",
                    k.rows(),
                    k.cols()
                )));
            }
            sum = &sum + &k.dagger().matmul(k);
        }
        if !sum.approx_eq(&Matrix::identity(dim), 1e-9) {
            return Err(CircuitError::InvalidChannel(name));
        }
        Ok(Channel { name, arity, kraus })
    }

    /// Channel name for display.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The Kraus operators.
    pub fn kraus(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Single-qubit depolarizing channel: with probability `p` replace the
    /// state by a uniformly random Pauli error.
    pub fn depolarizing(p: f64) -> Result<Self, CircuitError> {
        check_prob(p, "depolarizing")?;
        let k0 = Matrix::identity(2).scale(C64::real((1.0 - p).sqrt()));
        let kx = pauli('X').scale(C64::real((p / 3.0).sqrt()));
        let ky = pauli('Y').scale(C64::real((p / 3.0).sqrt()));
        let kz = pauli('Z').scale(C64::real((p / 3.0).sqrt()));
        Channel::new(format!("depolarizing({p})"), 1, vec![k0, kx, ky, kz])
    }

    /// Bit-flip channel: X error with probability `p`.
    pub fn bit_flip(p: f64) -> Result<Self, CircuitError> {
        check_prob(p, "bit_flip")?;
        let k0 = Matrix::identity(2).scale(C64::real((1.0 - p).sqrt()));
        let k1 = pauli('X').scale(C64::real(p.sqrt()));
        Channel::new(format!("bit_flip({p})"), 1, vec![k0, k1])
    }

    /// Phase-flip channel: Z error with probability `p`.
    pub fn phase_flip(p: f64) -> Result<Self, CircuitError> {
        check_prob(p, "phase_flip")?;
        let k0 = Matrix::identity(2).scale(C64::real((1.0 - p).sqrt()));
        let k1 = pauli('Z').scale(C64::real(p.sqrt()));
        Channel::new(format!("phase_flip({p})"), 1, vec![k0, k1])
    }

    /// Amplitude-damping channel with decay probability `gamma`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, CircuitError> {
        check_prob(gamma, "amplitude_damping")?;
        let mut k0 = Matrix::identity(2);
        k0[(1, 1)] = C64::real((1.0 - gamma).sqrt());
        let mut k1 = Matrix::zeros(2, 2);
        k1[(0, 1)] = C64::real(gamma.sqrt());
        Channel::new(format!("amplitude_damping({gamma})"), 1, vec![k0, k1])
    }

    /// Two-qubit depolarizing channel (uniform over the 15 non-identity
    /// two-qubit Paulis with total probability `p`).
    pub fn depolarizing2(p: f64) -> Result<Self, CircuitError> {
        check_prob(p, "depolarizing2")?;
        let paulis = ['I', 'X', 'Y', 'Z'];
        let mut kraus = Vec::with_capacity(16);
        for (i, &a) in paulis.iter().enumerate() {
            for (j, &b) in paulis.iter().enumerate() {
                let weight = if i == 0 && j == 0 {
                    (1.0 - p).sqrt()
                } else {
                    (p / 15.0).sqrt()
                };
                kraus.push(pauli(a).kron(&pauli(b)).scale(C64::real(weight)));
            }
        }
        Channel::new(format!("depolarizing2({p})"), 2, kraus)
    }
}

fn check_prob(p: f64, name: &str) -> Result<(), CircuitError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(CircuitError::Invalid(format!(
            "{name}: probability {p} outside [0, 1]"
        )));
    }
    Ok(())
}

fn pauli(which: char) -> Matrix {
    match which {
        'I' => Matrix::identity(2),
        'X' => Matrix::from_vec(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]),
        'Y' => Matrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO]),
        'Z' => Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE]),
        _ => unreachable!("unknown Pauli {which}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_channels_are_complete() {
        for ch in [
            Channel::depolarizing(0.1).unwrap(),
            Channel::bit_flip(0.25).unwrap(),
            Channel::phase_flip(0.5).unwrap(),
            Channel::amplitude_damping(0.3).unwrap(),
        ] {
            assert_eq!(ch.arity(), 1);
            let sum = ch
                .kraus()
                .iter()
                .fold(Matrix::zeros(2, 2), |acc, k| &acc + &k.dagger().matmul(k));
            assert!(sum.approx_eq(&Matrix::identity(2), 1e-12), "{}", ch.name());
        }
    }

    #[test]
    fn two_qubit_depolarizing_is_complete() {
        let ch = Channel::depolarizing2(0.2).unwrap();
        assert_eq!(ch.arity(), 2);
        assert_eq!(ch.kraus().len(), 16);
        let sum = ch
            .kraus()
            .iter()
            .fold(Matrix::zeros(4, 4), |acc, k| &acc + &k.dagger().matmul(k));
        assert!(sum.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Channel::depolarizing(-0.1).is_err());
        assert!(Channel::bit_flip(1.5).is_err());
    }

    #[test]
    fn incomplete_kraus_set_rejected() {
        let half = Matrix::identity(2).scale(C64::real(0.5));
        assert!(matches!(
            Channel::new("bogus", 1, vec![half]),
            Err(CircuitError::InvalidChannel(_))
        ));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let id4 = Matrix::identity(4);
        assert!(Channel::new("bogus", 1, vec![id4]).is_err());
    }

    #[test]
    fn zero_probability_channels_are_identity_like() {
        let ch = Channel::bit_flip(0.0).unwrap();
        // second Kraus operator is exactly zero
        assert!(ch.kraus()[1].approx_eq(&Matrix::zeros(2, 2), 1e-15));
    }
}

//! Symbolic gate parameters and parameter resolution.
//!
//! Mirrors Cirq's `sympy.Symbol` + `ParamResolver` workflow at the level the
//! paper exercises it (Sec. 4.4: sweeping the QAOA angles gamma and beta):
//! a parameter is either a concrete value or `scale * symbol + offset`.

use crate::error::CircuitError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A real-valued gate parameter: a constant or an affine function of a
/// named symbol.
#[derive(Clone, Debug, PartialEq)]
pub enum Param {
    /// A concrete value.
    Const(f64),
    /// `scale * symbol + offset`.
    Symbolic {
        /// Symbol name, e.g. `"gamma"`.
        symbol: Arc<str>,
        /// Multiplicative coefficient.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
}

impl Param {
    /// A named symbol with unit scale and zero offset.
    pub fn symbol(name: &str) -> Param {
        Param::Symbolic {
            symbol: Arc::from(name),
            scale: 1.0,
            offset: 0.0,
        }
    }

    /// True when the parameter still references a symbol.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Param::Symbolic { .. })
    }

    /// The concrete value, or an error naming the unresolved symbol.
    pub fn value(&self) -> Result<f64, CircuitError> {
        match self {
            Param::Const(v) => Ok(*v),
            Param::Symbolic { symbol, .. } => {
                Err(CircuitError::UnresolvedParameter(symbol.to_string()))
            }
        }
    }

    /// Resolves against `resolver`, producing a `Const` when the symbol is
    /// bound and leaving the parameter untouched otherwise.
    pub fn resolve(&self, resolver: &ParamResolver) -> Param {
        match self {
            Param::Const(_) => self.clone(),
            Param::Symbolic {
                symbol,
                scale,
                offset,
            } => match resolver.get(symbol) {
                Some(v) => Param::Const(scale * v + offset),
                None => self.clone(),
            },
        }
    }

    /// Multiplies the parameter by a constant.
    pub fn scaled(&self, k: f64) -> Param {
        match self {
            Param::Const(v) => Param::Const(v * k),
            Param::Symbolic {
                symbol,
                scale,
                offset,
            } => Param::Symbolic {
                symbol: symbol.clone(),
                scale: scale * k,
                offset: offset * k,
            },
        }
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::Const(v)
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Param::Const(v) => write!(f, "{v}"),
            Param::Symbolic {
                symbol,
                scale,
                offset,
            } => {
                if *scale != 1.0 {
                    write!(f, "{scale}*")?;
                }
                write!(f, "{symbol}")?;
                if *offset != 0.0 {
                    write!(f, "+{offset}")?;
                }
                Ok(())
            }
        }
    }
}

/// Binds symbol names to values.
#[derive(Clone, Debug, Default)]
pub struct ParamResolver {
    bindings: HashMap<String, f64>,
}

impl ParamResolver {
    /// An empty resolver (resolves nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a resolver from `(name, value)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut r = Self::new();
        for (k, v) in pairs {
            r.bind(k, v);
        }
        r
    }

    /// Binds `name` to `value`, replacing any existing binding.
    pub fn bind(&mut self, name: &str, value: f64) -> &mut Self {
        self.bindings.insert(name.to_string(), value);
        self
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.bindings.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_resolves_to_itself() {
        let p = Param::Const(1.5);
        assert!(!p.is_symbolic());
        assert_eq!(p.value().unwrap(), 1.5);
    }

    #[test]
    fn symbol_value_errors_until_resolved() {
        let p = Param::symbol("gamma");
        assert!(p.is_symbolic());
        assert!(matches!(
            p.value(),
            Err(CircuitError::UnresolvedParameter(s)) if s == "gamma"
        ));
        let r = ParamResolver::from_pairs([("gamma", 0.25)]);
        assert_eq!(p.resolve(&r).value().unwrap(), 0.25);
    }

    #[test]
    fn affine_resolution() {
        let p = Param::symbol("beta").scaled(2.0);
        let r = ParamResolver::from_pairs([("beta", 0.5)]);
        assert_eq!(p.resolve(&r).value().unwrap(), 1.0);
    }

    #[test]
    fn unbound_symbol_left_symbolic() {
        let p = Param::symbol("theta");
        let r = ParamResolver::new();
        assert!(p.resolve(&r).is_symbolic());
    }

    #[test]
    fn rebinding_overwrites() {
        let mut r = ParamResolver::new();
        r.bind("x", 1.0);
        r.bind("x", 2.0);
        assert_eq!(r.get("x"), Some(2.0));
    }
}

//! Decomposition of three-qubit gates into Clifford+T primitives.
//!
//! The tensor-network backends accept at most two-qubit gates, and the
//! sum-over-Cliffords channel accepts Clifford + Rz-family gates; the
//! textbook 7-T Toffoli decomposition bridges both. Decompositions are
//! exact including global phase.

use crate::circuit::{Circuit, InsertStrategy};
use crate::gate::Gate;
use crate::op::{OpKind, Operation};
use crate::qubit::Qubit;

/// The standard 7-T decomposition of the Toffoli gate
/// (controls `a`, `b`, target `c`).
pub fn decompose_ccx(a: Qubit, b: Qubit, c: Qubit) -> Vec<Operation> {
    use Gate::*;
    let g1 = |g: Gate, q: Qubit| Operation::gate(g, vec![q]).expect("1q");
    let cx = |x: Qubit, y: Qubit| Operation::gate(Cnot, vec![x, y]).expect("2q");
    vec![
        g1(H, c),
        cx(b, c),
        g1(Tdg, c),
        cx(a, c),
        g1(T, c),
        cx(b, c),
        g1(Tdg, c),
        cx(a, c),
        g1(T, b),
        g1(T, c),
        g1(H, c),
        cx(a, b),
        g1(T, a),
        g1(Tdg, b),
        cx(a, b),
    ]
}

/// CCZ as the Toffoli decomposition conjugated by H on the target.
pub fn decompose_ccz(a: Qubit, b: Qubit, c: Qubit) -> Vec<Operation> {
    let h = Operation::gate(Gate::H, vec![c]).expect("1q");
    let mut ops = vec![h.clone()];
    ops.extend(decompose_ccx(a, b, c));
    ops.push(h);
    ops
}

/// Fredkin (controlled-SWAP) via CCX conjugated by CNOT on the targets.
pub fn decompose_cswap(a: Qubit, b: Qubit, c: Qubit) -> Vec<Operation> {
    let cx = Operation::gate(Gate::Cnot, vec![c, b]).expect("2q");
    let mut ops = vec![cx.clone()];
    ops.extend(decompose_ccx(a, b, c));
    ops.push(cx);
    ops
}

/// Expands an operation into one- and two-qubit operations when it is a
/// known three-qubit gate; returns the operation unchanged otherwise.
pub fn decompose_op(op: &Operation) -> Vec<Operation> {
    if let OpKind::Gate(g) = &op.kind {
        let q = op.support();
        match g {
            Gate::Ccx => return decompose_ccx(q[0], q[1], q[2]),
            Gate::Ccz => return decompose_ccz(q[0], q[1], q[2]),
            Gate::Cswap => return decompose_cswap(q[0], q[1], q[2]),
            _ => {}
        }
    }
    vec![op.clone()]
}

/// Rewrites a circuit so every operation acts on at most two qubits
/// (required by the MPS backends). Gate order is preserved; moments are
/// repacked with the earliest strategy.
pub fn decompose_three_qubit_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    for op in circuit.all_operations() {
        for piece in decompose_op(op) {
            out.append(piece, InsertStrategy::Earliest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unitary_of(ops: Vec<Operation>, n: usize) -> bgls_linalg::Matrix {
        let mut c = Circuit::new();
        for op in ops {
            c.push(op);
        }
        c.unitary(n).unwrap()
    }

    #[test]
    fn ccx_decomposition_is_exact() {
        let want = {
            let mut c = Circuit::new();
            c.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
            c.unitary(3).unwrap()
        };
        let got = unitary_of(decompose_ccx(Qubit(0), Qubit(1), Qubit(2)), 3);
        assert!(got.approx_eq(&want, 1e-10), "CCX decomposition drifted");
    }

    #[test]
    fn ccz_decomposition_is_exact() {
        let want = {
            let mut c = Circuit::new();
            c.push(Operation::gate(Gate::Ccz, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
            c.unitary(3).unwrap()
        };
        let got = unitary_of(decompose_ccz(Qubit(0), Qubit(1), Qubit(2)), 3);
        assert!(got.approx_eq(&want, 1e-10));
    }

    #[test]
    fn cswap_decomposition_is_exact() {
        let want = {
            let mut c = Circuit::new();
            c.push(Operation::gate(Gate::Cswap, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
            c.unitary(3).unwrap()
        };
        let got = unitary_of(decompose_cswap(Qubit(0), Qubit(1), Qubit(2)), 3);
        assert!(got.approx_eq(&want, 1e-10));
    }

    #[test]
    fn ccx_uses_seven_t_gates() {
        let ops = decompose_ccx(Qubit(0), Qubit(1), Qubit(2));
        let t_count = ops
            .iter()
            .filter(|o| matches!(o.as_gate(), Some(Gate::T) | Some(Gate::Tdg)))
            .count();
        assert_eq!(t_count, 7);
        assert!(ops.iter().all(|o| o.support().len() <= 2));
    }

    #[test]
    fn circuit_transformer_preserves_unitary() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
        c.push(Operation::gate(Gate::Cswap, vec![Qubit(2), Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        let d = decompose_three_qubit_gates(&c);
        assert!(d.all_operations().all(|op| op.support().len() <= 2));
        let u = c.unitary(3).unwrap();
        let v = d.unitary(3).unwrap();
        assert!(u.approx_eq(&v, 1e-9));
    }

    #[test]
    fn non_three_qubit_ops_pass_through() {
        let op = Operation::measure(vec![Qubit(0)], "m").unwrap();
        assert_eq!(decompose_op(&op), vec![op]);
    }

    #[test]
    fn decomposition_works_on_scrambled_qubit_order() {
        let want = {
            let mut c = Circuit::new();
            c.push(Operation::gate(Gate::Ccx, vec![Qubit(2), Qubit(0), Qubit(1)]).unwrap());
            c.unitary(3).unwrap()
        };
        let got = unitary_of(decompose_ccx(Qubit(2), Qubit(0), Qubit(1)), 3);
        assert!(got.approx_eq(&want, 1e-10));
    }
}

//! Sparse Pauli observables: [`PauliOp`], [`PauliString`], [`PauliSum`].
//!
//! The gate-by-gate sampler surfaces bitstring histograms; observables
//! turn those histograms — or the exact backend states — into physics.
//! This module is the observable *algebra*: sparse Pauli strings with
//! phase-tracked multiplication, Hermitian sums with complex
//! coefficients, parsing for both sparse (`"X0 Z2"`) and dense
//! (`"XIZ"`) spellings, qubit-wise-commuting grouping, and the
//! basis-rotation circuits that map each group onto computational-basis
//! measurements.
//!
//! The evaluation side lives elsewhere: `BglsState::expectation` in
//! `bgls-core` (exact per-backend expectations) and
//! `Simulator::expectation_value` / `Simulator::estimate_expectation`
//! (exact and grouped-shot estimation over circuits).
//!
//! ```
//! use bgls_circuit::{PauliString, PauliSum};
//!
//! let zz: PauliString = "Z0 Z1".parse().unwrap();
//! let xx: PauliString = "X0 X1".parse().unwrap();
//! assert!(zz.commutes_with(&xx));
//! assert!(!zz.qubit_wise_commutes(&xx));
//!
//! // (Z0 Z1)(X0 X1) = (ZX)(ZX) = (iY)(iY) = -Y0 Y1
//! let (phase, prod) = zz.mul_with_phase(&xx);
//! assert_eq!(prod.to_string(), "Y0 Y1");
//! assert_eq!(phase.re, -1.0);
//!
//! let h: PauliSum = "1.5 * Z0 Z1 - 0.5 * X0 + 2".parse().unwrap();
//! assert_eq!(h.num_terms(), 3);
//! assert!(h.is_hermitian(1e-12));
//! ```

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::op::Operation;
use crate::qubit::Qubit;
use bgls_linalg::{Matrix, C64};
use std::fmt;
use std::str::FromStr;

/// A single-qubit Pauli operator (the identity is represented by
/// *absence* from a [`PauliString`]'s support).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PauliOp {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl PauliOp {
    /// Display letter.
    pub fn letter(&self) -> char {
        match self {
            PauliOp::X => 'X',
            PauliOp::Y => 'Y',
            PauliOp::Z => 'Z',
        }
    }

    /// The operator's 2x2 matrix.
    pub fn matrix(&self) -> Matrix {
        match self {
            PauliOp::X => Matrix::from_vec(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]),
            PauliOp::Y => Matrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO]),
            PauliOp::Z => Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE]),
        }
    }

    /// Whether the operator has an X component (X or Y) / a Z component
    /// (Z or Y) in the symplectic `X^x Z^z` picture.
    pub fn xz_bits(&self) -> (bool, bool) {
        match self {
            PauliOp::X => (true, false),
            PauliOp::Y => (true, true),
            PauliOp::Z => (false, true),
        }
    }

    /// Parses one Pauli letter (`X`/`Y`/`Z`, case-insensitive).
    /// `I` is not a `PauliOp`; callers treat it as "no operator".
    fn from_letter(c: char) -> Option<PauliOp> {
        match c.to_ascii_uppercase() {
            'X' => Some(PauliOp::X),
            'Y' => Some(PauliOp::Y),
            'Z' => Some(PauliOp::Z),
            _ => None,
        }
    }

    /// Single-qubit product `self * other` as `(i^k, result)`, where
    /// `result = None` means the identity (e.g. `X * X = I`).
    fn mul(self, other: PauliOp) -> (u8, Option<PauliOp>) {
        use PauliOp::*;
        if self == other {
            return (0, None);
        }
        match (self, other) {
            // cyclic products pick up +i, anti-cyclic -i (i^3)
            (X, Y) => (1, Some(Z)),
            (Y, Z) => (1, Some(X)),
            (Z, X) => (1, Some(Y)),
            (Y, X) => (3, Some(Z)),
            (Z, Y) => (3, Some(X)),
            (X, Z) => (3, Some(Y)),
            _ => unreachable!("equal operators handled above"),
        }
    }
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A sparse Hermitian Pauli string: a product of single-qubit [`PauliOp`]s
/// on distinct qubits (identity everywhere else), e.g. `X0 Z2 Y5`.
///
/// Strings carry no coefficient or phase of their own — they are the
/// basis elements a [`PauliSum`] weights. Products of two strings produce
/// an explicit `i^k` phase ([`PauliString::mul_with_phase`]), so the
/// algebra stays exact.
///
/// ```
/// use bgls_circuit::{PauliOp, PauliString};
///
/// let p: PauliString = "Y1 X3".parse().unwrap();
/// assert_eq!(p.weight(), 2);
/// assert_eq!(p.op_on(1), Some(PauliOp::Y));
/// assert_eq!(p.op_on(0), None);
/// // dense spelling: one letter per qubit, qubit 0 first
/// assert_eq!("IYIX".parse::<PauliString>().unwrap(), p);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    /// `(qubit, op)` pairs, sorted by qubit, one entry per qubit.
    ops: Vec<(usize, PauliOp)>,
}

impl PauliString {
    /// The identity string (empty support).
    pub fn identity() -> Self {
        PauliString { ops: Vec::new() }
    }

    /// A single-qubit string.
    pub fn single(qubit: usize, op: PauliOp) -> Self {
        PauliString {
            ops: vec![(qubit, op)],
        }
    }

    /// `X` on one qubit.
    pub fn x(qubit: usize) -> Self {
        Self::single(qubit, PauliOp::X)
    }

    /// `Y` on one qubit.
    pub fn y(qubit: usize) -> Self {
        Self::single(qubit, PauliOp::Y)
    }

    /// `Z` on one qubit.
    pub fn z(qubit: usize) -> Self {
        Self::single(qubit, PauliOp::Z)
    }

    /// The Z-string `Z_{q1} Z_{q2} ...` over the listed qubits.
    pub fn z_string(qubits: &[usize]) -> Result<Self, CircuitError> {
        Self::from_ops(qubits.iter().map(|&q| (q, PauliOp::Z)))
    }

    /// Builds a string from `(qubit, op)` pairs. Fails on duplicate
    /// qubits (use [`PauliString::mul_with_phase`] to multiply operators
    /// on the same qubit).
    pub fn from_ops(ops: impl IntoIterator<Item = (usize, PauliOp)>) -> Result<Self, CircuitError> {
        let mut ops: Vec<(usize, PauliOp)> = ops.into_iter().collect();
        ops.sort_unstable_by_key(|&(q, _)| q);
        for w in ops.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(CircuitError::Invalid(format!(
                    "duplicate qubit {} in Pauli string",
                    w[0].0
                )));
            }
        }
        Ok(PauliString { ops })
    }

    /// True for the identity string.
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of non-identity tensor factors.
    pub fn weight(&self) -> usize {
        self.ops.len()
    }

    /// The `(qubit, op)` pairs in ascending qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, PauliOp)> + '_ {
        self.ops.iter().copied()
    }

    /// The supported qubits in ascending order.
    pub fn support(&self) -> Vec<usize> {
        self.ops.iter().map(|&(q, _)| q).collect()
    }

    /// The operator on `qubit`, if any.
    pub fn op_on(&self, qubit: usize) -> Option<PauliOp> {
        self.ops
            .binary_search_by_key(&qubit, |&(q, _)| q)
            .ok()
            .map(|i| self.ops[i].1)
    }

    /// The largest supported qubit index (`None` for the identity).
    pub fn max_qubit(&self) -> Option<usize> {
        self.ops.last().map(|&(q, _)| q)
    }

    /// Symplectic masks over the low 64 qubits: `(x_mask, z_mask,
    /// y_count)` with bit `q` of `x_mask` set when qubit `q` carries X or
    /// Y, bit `q` of `z_mask` when it carries Z or Y. Together with
    /// `i^{y_count}` this is the `P = i^{|Y|} X^x Z^z` normal form every
    /// dense backend evaluates. Panics when the support exceeds qubit 63
    /// (the `BitString` width cap).
    pub fn dense_masks(&self) -> (u64, u64, u32) {
        let mut x = 0u64;
        let mut z = 0u64;
        let mut ny = 0u32;
        for &(q, op) in &self.ops {
            assert!(q < 64, "dense masks support at most 64 qubits, got {q}");
            let (xb, zb) = op.xz_bits();
            if xb {
                x |= 1 << q;
            }
            if zb {
                z |= 1 << q;
            }
            if op == PauliOp::Y {
                ny += 1;
            }
        }
        (x, z, ny)
    }

    /// Phase-tracked product: `self * other = i^k * result`, returned as
    /// `(i^k, result)` with the phase materialized as a [`C64`].
    pub fn mul_with_phase(&self, other: &PauliString) -> (C64, PauliString) {
        let mut ops = Vec::with_capacity(self.ops.len() + other.ops.len());
        let mut phase: u8 = 0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ops.len() || j < other.ops.len() {
            match (self.ops.get(i), other.ops.get(j)) {
                (Some(&(qa, a)), Some(&(qb, _))) if qa < qb => {
                    ops.push((qa, a));
                    i += 1;
                }
                (Some(&(qa, _)), Some(&(qb, b))) if qb < qa => {
                    ops.push((qb, b));
                    j += 1;
                }
                (Some(&(q, a)), Some(&(_, b))) => {
                    let (k, prod) = a.mul(b);
                    phase = (phase + k) % 4;
                    if let Some(op) = prod {
                        ops.push((q, op));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(q, a)), None) => {
                    ops.push((q, a));
                    i += 1;
                }
                (None, Some(&(q, b))) => {
                    ops.push((q, b));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        (C64::i_pow(phase as i64), PauliString { ops })
    }

    /// True when the strings commute as operators: they anticommute on an
    /// even number of shared qubits.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let mut anti = 0usize;
        for &(q, a) in &self.ops {
            if let Some(b) = other.op_on(q) {
                if a != b {
                    anti += 1;
                }
            }
        }
        anti.is_multiple_of(2)
    }

    /// True when the strings commute *qubit-wise*: on every shared qubit
    /// the operators are equal. Qubit-wise-commuting strings are
    /// simultaneously diagonalized by one single-qubit basis rotation
    /// layer, which is what lets a whole group ride one sampling run.
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        self.ops
            .iter()
            .all(|&(q, a)| other.op_on(q).map(|b| a == b).unwrap_or(true))
    }

    /// The support as a `u64` bitmask (bit `q` set when qubit `q`
    /// carries an operator). Panics beyond qubit 63 — the `BitString`
    /// width cap. Hot loops (the shot estimator) compute this once per
    /// term and score samples with [`parity_sign_masked`].
    pub fn support_mask(&self) -> u64 {
        self.ops.iter().fold(0, |acc, &(q, _)| {
            assert!(q < 64, "support mask limited to 64 qubits, got {q}");
            acc | (1 << q)
        })
    }

    /// The `(-1)^{...}` eigenvalue of this string on a computational
    /// basis state, *assuming the string is Z-diagonal on its support
    /// after basis rotation*: the parity of `bits` over the support.
    /// `bits` holds qubit `q`'s value in bit `q`.
    pub fn parity_sign(&self, bits: u64) -> f64 {
        parity_sign_masked(self.support_mask(), bits)
    }
}

/// [`PauliString::parity_sign`] with the support mask precomputed
/// ([`PauliString::support_mask`]) — the per-sample form of the shot
/// estimator's scoring loop.
pub fn parity_sign_masked(support_mask: u64, bits: u64) -> f64 {
    if (bits & support_mask).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Scores one computational-basis sample against precomputed
/// `(real coefficient, support mask)` terms
/// ([`PauliSum::parity_terms`]): `sum_t c_t * (-1)^{|bits & mask_t|}`.
/// The per-sample inner loop shared by the shot estimator and the
/// sample-based diagonal estimators.
pub fn score_parity_terms(terms: &[(f64, u64)], bits: u64) -> f64 {
    terms
        .iter()
        .map(|&(c, mask)| c * parity_sign_masked(mask, bits))
        .sum()
}

impl FromStr for PauliString {
    type Err = CircuitError;

    /// Parses either the sparse spelling (`"X0 Z2"`, `*`-separated also
    /// accepted) or the dense one (`"XIZZ"`, one letter per qubit with
    /// qubit 0 first). `""`, `"I"`, and `"II..."` are the identity.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let err = |msg: String| CircuitError::Invalid(msg);
        if s.chars().any(|c| c.is_ascii_digit()) {
            // sparse: letter-index tokens
            let mut ops = Vec::new();
            for tok in s.split(|c: char| c.is_whitespace() || c == '*') {
                if tok.is_empty() {
                    continue;
                }
                let mut chars = tok.chars();
                let letter = chars.next().expect("non-empty token");
                let idx: usize = chars
                    .as_str()
                    .parse()
                    .map_err(|_| err(format!("bad qubit index in Pauli token '{tok}'")))?;
                if letter.eq_ignore_ascii_case(&'I') {
                    continue;
                }
                let op = PauliOp::from_letter(letter)
                    .ok_or_else(|| err(format!("bad Pauli letter in token '{tok}'")))?;
                ops.push((idx, op));
            }
            PauliString::from_ops(ops)
        } else {
            // dense: one letter per qubit
            let mut ops = Vec::new();
            for (q, c) in s.chars().filter(|c| !c.is_whitespace()).enumerate() {
                if c.eq_ignore_ascii_case(&'I') {
                    continue;
                }
                let op = PauliOp::from_letter(c)
                    .ok_or_else(|| err(format!("bad Pauli letter '{c}'")))?;
                ops.push((q, op));
            }
            PauliString::from_ops(ops)
        }
    }
}

impl fmt::Display for PauliString {
    /// Sparse spelling: `"X0 Z2"`; the identity prints as `"I"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "I");
        }
        for (i, &(q, op)) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{op}{q}")?;
        }
        Ok(())
    }
}

/// A weighted sum of [`PauliString`]s with complex coefficients — the
/// observable type of the expectation engine. Terms are kept canonical:
/// sorted, like strings merged, and (near-)zero coefficients dropped.
///
/// ```
/// use bgls_circuit::{PauliString, PauliSum};
/// use bgls_linalg::C64;
///
/// // build programmatically ...
/// let mut h = PauliSum::new();
/// h.add_term(C64::real(0.5), "Z0 Z1".parse().unwrap());
/// h.add_term(C64::real(0.5), "Z0 Z1".parse().unwrap());
/// // ... or parse; the two agree
/// assert_eq!(h, "Z0 Z1".parse().unwrap());
///
/// // algebra: (X0)^2 = I
/// let x: PauliSum = "X0".parse().unwrap();
/// let sq = x.mul_sum(&x);
/// assert_eq!(sq.num_terms(), 1);
/// assert!(sq.terms()[0].1.is_identity());
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PauliSum {
    /// Canonical `(coefficient, string)` terms, sorted by string.
    terms: Vec<(C64, PauliString)>,
}

/// Coefficients at or below this magnitude are treated as zero when
/// canonicalizing.
const COEFF_EPS: f64 = 1e-15;

impl PauliSum {
    /// The zero sum.
    pub fn new() -> Self {
        PauliSum { terms: Vec::new() }
    }

    /// A constant (identity-only) sum.
    pub fn constant(c: C64) -> Self {
        let mut s = PauliSum::new();
        s.add_term(c, PauliString::identity());
        s
    }

    /// Builds from `(coefficient, string)` pairs, merging duplicates.
    pub fn from_terms(terms: impl IntoIterator<Item = (C64, PauliString)>) -> Self {
        let mut s = PauliSum::new();
        for (c, p) in terms {
            s.add_term(c, p);
        }
        s
    }

    /// Adds `c * string` into the sum, keeping terms canonical.
    pub fn add_term(&mut self, c: C64, string: PauliString) {
        match self.terms.binary_search_by(|(_, p)| p.cmp(&string)) {
            Ok(i) => {
                self.terms[i].0 += c;
                if self.terms[i].0.abs() <= COEFF_EPS {
                    self.terms.remove(i);
                }
            }
            Err(i) => {
                if c.abs() > COEFF_EPS {
                    self.terms.insert(i, (c, string));
                }
            }
        }
    }

    /// The canonical terms, sorted by string.
    pub fn terms(&self) -> &[(C64, PauliString)] {
        &self.terms
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True for the (empty) zero sum.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True when every coefficient is real within `tol` — i.e. the sum is
    /// a Hermitian observable with a real expectation value.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.terms.iter().all(|(c, _)| c.im.abs() <= tol)
    }

    /// The largest supported qubit index across all terms.
    pub fn max_qubit(&self) -> Option<usize> {
        self.terms.iter().filter_map(|(_, p)| p.max_qubit()).max()
    }

    /// Scales every coefficient.
    pub fn scaled(&self, k: C64) -> PauliSum {
        PauliSum::from_terms(self.terms.iter().map(|(c, p)| (*c * k, p.clone())))
    }

    /// Sum of two observables.
    pub fn add_sum(&self, other: &PauliSum) -> PauliSum {
        let mut out = self.clone();
        for (c, p) in &other.terms {
            out.add_term(*c, p.clone());
        }
        out
    }

    /// Operator product of two observables, with all `i^k` cross-term
    /// phases folded into the coefficients.
    pub fn mul_sum(&self, other: &PauliSum) -> PauliSum {
        let mut out = PauliSum::new();
        for (ca, pa) in &self.terms {
            for (cb, pb) in &other.terms {
                let (phase, prod) = pa.mul_with_phase(pb);
                out.add_term(*ca * *cb * phase, prod);
            }
        }
        out
    }

    /// The terms as `(real coefficient, support mask)` pairs — the
    /// precomputed form of the Z-diagonalized scoring loop
    /// ([`score_parity_terms`]). Identity terms carry mask `0` (sign
    /// `+1` on every sample); imaginary coefficient parts are dropped,
    /// so callers wanting Hermiticity enforced must check it first.
    pub fn parity_terms(&self) -> Vec<(f64, u64)> {
        self.terms
            .iter()
            .map(|(c, p)| (c.re, p.support_mask()))
            .collect()
    }

    /// Greedy first-fit partition of the terms into qubit-wise-commuting
    /// groups. Every group's strings share one single-qubit measurement
    /// basis ([`PauliSum::diagonalizing_rotations`]), so the shot-based
    /// estimator spends one sampling run per group instead of one per
    /// term. The union of the groups is exactly this sum.
    pub fn qubit_wise_commuting_groups(&self) -> Vec<PauliSum> {
        let mut groups: Vec<PauliSum> = Vec::new();
        for (c, p) in &self.terms {
            // qubit_wise_commutes is symmetric (it only compares shared
            // qubits), so one direction suffices
            match groups
                .iter_mut()
                .find(|g| g.terms.iter().all(|(_, q)| q.qubit_wise_commutes(p)))
            {
                Some(g) => g.add_term(*c, p.clone()),
                None => groups.push(PauliSum::from_terms([(*c, p.clone())])),
            }
        }
        groups
    }

    /// The shared measurement basis of a qubit-wise-commuting sum: the
    /// union of the terms' supports with the (consistent) operator per
    /// qubit. Fails when two terms disagree on a qubit — i.e. when the
    /// sum is not qubit-wise commuting.
    pub fn joint_basis(&self) -> Result<Vec<(usize, PauliOp)>, CircuitError> {
        let mut basis: Vec<(usize, PauliOp)> = Vec::new();
        for (_, p) in &self.terms {
            for (q, op) in p.iter() {
                match basis.binary_search_by_key(&q, |&(bq, _)| bq) {
                    Ok(i) => {
                        if basis[i].1 != op {
                            return Err(CircuitError::Invalid(format!(
                                "terms disagree on qubit {q} ({} vs {op}): \
                                 sum is not qubit-wise commuting",
                                basis[i].1
                            )));
                        }
                    }
                    Err(i) => basis.insert(i, (q, op)),
                }
            }
        }
        Ok(basis)
    }

    /// The single-qubit rotation layer mapping this (qubit-wise
    /// commuting) sum's measurement basis onto the computational basis:
    /// `H` per X qubit, `Sdg` then `H` per Y qubit (so that `W P W^dag =
    /// Z` on every supported qubit). Appending these operations to a
    /// circuit and sampling bitstrings turns every term into a parity
    /// observable ([`PauliString::parity_sign`]).
    ///
    /// All emitted gates are Clifford, so the rotations stay runnable on
    /// every backend, stabilizer states included.
    pub fn diagonalizing_rotations(&self) -> Result<Vec<Operation>, CircuitError> {
        let mut ops = Vec::new();
        for (q, op) in self.joint_basis()? {
            let q = Qubit(q as u32);
            match op {
                PauliOp::Z => {}
                PauliOp::X => ops.push(Operation::gate(Gate::H, vec![q])?),
                PauliOp::Y => {
                    ops.push(Operation::gate(Gate::Sdg, vec![q])?);
                    ops.push(Operation::gate(Gate::H, vec![q])?);
                }
            }
        }
        Ok(ops)
    }
}

impl FromStr for PauliSum {
    type Err = CircuitError;

    /// Parses sums like `"1.5 * Z0 Z1 - 0.5 * X0 + 2"`: terms separated
    /// by `+`/`-`, each an optional real factor (joined by `*` or
    /// whitespace) times a Pauli string; a bare number is an identity
    /// term.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sum = PauliSum::new();
        let mut term = String::new();
        let mut sign = 1.0f64;
        let flush = |term: &mut String, sign: f64, sum: &mut PauliSum| -> Result<(), _> {
            let t = term.trim();
            if t.is_empty() {
                return Err(CircuitError::Invalid("empty term in Pauli sum".into()));
            }
            let mut coeff = sign;
            let mut paulis = String::new();
            for tok in t.split(|c: char| c.is_whitespace() || c == '*') {
                if tok.is_empty() {
                    continue;
                }
                if let Ok(v) = tok.parse::<f64>() {
                    coeff *= v;
                } else {
                    paulis.push_str(tok);
                    paulis.push(' ');
                }
            }
            let string: PauliString = paulis.parse()?;
            sum.add_term(C64::real(coeff), string);
            term.clear();
            Ok(())
        };
        for c in s.trim().chars() {
            // a sign directly after 'e'/'E' is a float exponent
            // ("1e-3"), not a term separator
            let in_exponent = matches!(term.chars().last(), Some('e' | 'E'))
                && term
                    .chars()
                    .rev()
                    .nth(1)
                    .map(|p| p.is_ascii_digit() || p == '.')
                    .unwrap_or(false);
            match c {
                '+' | '-' if in_exponent => term.push(c),
                '+' | '-' if !term.trim().is_empty() => {
                    flush(&mut term, sign, &mut sum)?;
                    sign = if c == '-' { -1.0 } else { 1.0 };
                }
                '-' => sign = -sign,
                '+' => {}
                _ => term.push(c),
            }
        }
        flush(&mut term, sign, &mut sum)?;
        Ok(sum)
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, p)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if c.im.abs() > COEFF_EPS {
                write!(f, "({} + {}i)", c.re, c.im)?;
            } else {
                write!(f, "{}", c.re)?;
            }
            write!(f, " * {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_sparse_and_dense_agree() {
        assert_eq!(ps("X0 Z2"), ps("XIZ"));
        assert_eq!(ps("x0 * z2"), ps("X0 Z2"));
        assert_eq!(ps("Y3"), ps("IIIY"));
        assert_eq!(ps(""), PauliString::identity());
        assert_eq!(ps("I"), PauliString::identity());
        assert_eq!(ps("I0 I5"), PauliString::identity());
        // unsorted sparse input canonicalizes
        assert_eq!(ps("Z2 X0"), ps("X0 Z2"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("Q0".parse::<PauliString>().is_err());
        assert!("Xq".parse::<PauliString>().is_err());
        assert!("X0 Z0".parse::<PauliString>().is_err()); // duplicate qubit
        assert!("XQZ".parse::<PauliString>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["I", "X0", "X0 Z2", "Y1 Z2 X5"] {
            assert_eq!(ps(s).to_string(), s);
            assert_eq!(ps(&ps(s).to_string()), ps(s));
        }
    }

    #[test]
    fn single_qubit_products_with_phases() {
        // X Y = iZ
        let (phase, p) = PauliString::x(0).mul_with_phase(&PauliString::y(0));
        assert_eq!(p, PauliString::z(0));
        assert!(phase.approx_eq(C64::I, 1e-15));
        // Y X = -iZ
        let (phase, p) = PauliString::y(0).mul_with_phase(&PauliString::x(0));
        assert_eq!(p, PauliString::z(0));
        assert!(phase.approx_eq(-C64::I, 1e-15));
        // X X = I
        let (phase, p) = PauliString::x(0).mul_with_phase(&PauliString::x(0));
        assert!(p.is_identity());
        assert!(phase.approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn multi_qubit_product_merges_disjoint_support() {
        let (phase, p) = ps("X0").mul_with_phase(&ps("Z2"));
        assert_eq!(p, ps("X0 Z2"));
        assert!(phase.approx_eq(C64::ONE, 1e-15));
        // (Z0 Z1)(X0 X1) = -Y0 Y1
        let (phase, p) = ps("Z0 Z1").mul_with_phase(&ps("X0 X1"));
        assert_eq!(p, ps("Y0 Y1"));
        assert!(phase.approx_eq(-C64::ONE, 1e-15));
    }

    #[test]
    fn product_matches_matrix_arithmetic() {
        // verify phase tracking against 2-qubit dense kron products
        let cases = [("X0 Z1", "Y0 Y1"), ("Z0", "Y0 X1"), ("Y0 Z1", "Z0 Y1")];
        let dense = |p: &PauliString| -> Matrix {
            let mut m = Matrix::identity(1);
            for q in 0..2 {
                let f = p
                    .op_on(q)
                    .map(|o| o.matrix())
                    .unwrap_or(Matrix::identity(2));
                // qubit 0 = most significant factor, matching kron order
                m = m.kron(&f);
            }
            m
        };
        for (a, b) in cases {
            let (pa, pb) = (ps(a), ps(b));
            let (phase, prod) = pa.mul_with_phase(&pb);
            let lhs = dense(&pa).matmul(&dense(&pb));
            let rhs = dense(&prod).scale(phase);
            assert!(lhs.approx_eq(&rhs, 1e-12), "{a} * {b}");
        }
    }

    #[test]
    fn commutation_checks() {
        assert!(ps("Z0 Z1").commutes_with(&ps("X0 X1"))); // anticommute on 2 qubits
        assert!(!ps("Z0").commutes_with(&ps("X0")));
        assert!(ps("Z0").commutes_with(&ps("Z0")));
        assert!(ps("Z0").commutes_with(&ps("X1")));
        // qubit-wise commuting is stricter
        assert!(!ps("Z0 Z1").qubit_wise_commutes(&ps("X0 X1")));
        assert!(ps("Z0").qubit_wise_commutes(&ps("Z0 Z1")));
        assert!(ps("X0 Z2").qubit_wise_commutes(&ps("X0 Y1")));
    }

    #[test]
    fn dense_masks_normal_form() {
        let (x, z, ny) = ps("X0 Y1 Z2").dense_masks();
        assert_eq!(x, 0b011);
        assert_eq!(z, 0b110);
        assert_eq!(ny, 1);
    }

    #[test]
    fn parity_sign_is_support_parity() {
        let p = ps("Z0 Z2");
        assert_eq!(p.parity_sign(0b000), 1.0);
        assert_eq!(p.parity_sign(0b001), -1.0);
        assert_eq!(p.parity_sign(0b101), 1.0);
        assert_eq!(p.parity_sign(0b010), 1.0); // off-support bit ignored
        assert_eq!(PauliString::identity().parity_sign(0b111), 1.0);
    }

    #[test]
    fn sum_parsing_and_canonicalization() {
        let h: PauliSum = "1.5 * Z0 Z1 - 0.5*X0 + 2".parse().unwrap();
        assert_eq!(h.num_terms(), 3);
        assert!(h.is_hermitian(0.0));
        // identity coefficient
        let id_term = h.terms().iter().find(|(_, p)| p.is_identity()).unwrap();
        assert_eq!(id_term.0.re, 2.0);
        // like terms merge, cancellation drops terms
        let cancel: PauliSum = "Z0 - Z0 + X1".parse().unwrap();
        assert_eq!(cancel.num_terms(), 1);
        // double negative
        let neg: PauliSum = "- 2 * Z0".parse().unwrap();
        assert_eq!(neg.terms()[0].0.re, -2.0);
        assert!("".parse::<PauliSum>().is_err());
        // scientific-notation coefficients: the exponent sign is not a
        // term separator
        let sci: PauliSum = "1e-3 * Z0 + 2.5e+1 * X1 - 4E-2 * Z2".parse().unwrap();
        assert_eq!(sci.num_terms(), 3);
        let coeff = |s: &str| {
            let p: PauliString = s.parse().unwrap();
            sci.terms().iter().find(|(_, q)| *q == p).unwrap().0.re
        };
        assert_eq!(coeff("Z0"), 1e-3);
        assert_eq!(coeff("X1"), 25.0);
        assert_eq!(coeff("Z2"), -4e-2);
    }

    #[test]
    fn sum_algebra() {
        let a: PauliSum = "Z0 + X1".parse().unwrap();
        let b: PauliSum = "Z0 - X1".parse().unwrap();
        let s = a.add_sum(&b);
        assert_eq!(s, "2 * Z0".parse().unwrap());
        // (Z0 + X1)(Z0 - X1) = I - Z0 X1 + X1 Z0 - I = 0? No:
        // Z0 Z0 = I, -Z0 X1 + X1 Z0 = 0 (disjoint commute), -X1 X1 = -I
        let p = a.mul_sum(&b);
        assert!(p.is_zero(), "{p}");
        // anticommutator phases: (X0)(Y0) + (Y0)(X0) = iZ0 - iZ0 = 0
        let xy = PauliSum::from_terms([(C64::ONE, ps("X0"))])
            .mul_sum(&PauliSum::from_terms([(C64::ONE, ps("Y0"))]));
        let yx = PauliSum::from_terms([(C64::ONE, ps("Y0"))])
            .mul_sum(&PauliSum::from_terms([(C64::ONE, ps("X0"))]));
        assert!(xy.add_sum(&yx).is_zero());
        assert!(!xy.is_hermitian(1e-12)); // iZ0 alone is anti-Hermitian
    }

    #[test]
    fn qwc_groups_cover_the_sum() {
        let h: PauliSum = "Z0 Z1 + Z1 Z2 + X0 + X2 + Y1".parse().unwrap();
        let groups = h.qubit_wise_commuting_groups();
        assert!(groups.len() >= 2);
        let mut total = PauliSum::new();
        for g in &groups {
            // group members pairwise qubit-wise commute
            for (_, p) in g.terms() {
                for (_, q) in g.terms() {
                    assert!(p.qubit_wise_commutes(q), "{p} vs {q}");
                }
            }
            total = total.add_sum(g);
        }
        assert_eq!(total, h);
    }

    #[test]
    fn joint_basis_and_rotations() {
        let g: PauliSum = "X0 Z1 + X0 Y2".parse().unwrap();
        let basis = g.joint_basis().unwrap();
        assert_eq!(
            basis,
            vec![(0, PauliOp::X), (1, PauliOp::Z), (2, PauliOp::Y)]
        );
        let rots = g.diagonalizing_rotations().unwrap();
        // H on q0; nothing on q1; Sdg H on q2
        assert_eq!(rots.len(), 3);
        // non-QWC sums are rejected
        let bad: PauliSum = "X0 + Z0".parse().unwrap();
        assert!(bad.joint_basis().is_err());
    }

    #[test]
    fn pauli_matrices_are_the_textbook_ones() {
        for op in [PauliOp::X, PauliOp::Y, PauliOp::Z] {
            let m = op.matrix();
            assert!(m.is_unitary(1e-12));
            // Hermitian and traceless
            assert!(m.approx_eq(&m.dagger(), 1e-15), "{op}");
            assert!((m[(0, 0)] + m[(1, 1)]).abs() < 1e-15);
        }
        // Y = i X Z
        let ixz = PauliOp::X
            .matrix()
            .matmul(&PauliOp::Z.matrix())
            .scale(C64::I);
        assert!(ixz.approx_eq(&PauliOp::Y.matrix(), 1e-15));
    }
}

//! Moments: sets of operations that act in the same time slice.

use crate::error::CircuitError;
use crate::op::Operation;
use crate::qubit::Qubit;
use bgls_linalg::FxHashSet;

/// A time slice of qubit-disjoint operations (the Cirq `Moment` substitute).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Moment {
    ops: Vec<Operation>,
}

impl Moment {
    /// An empty moment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a moment from operations, validating qubit-disjointness.
    pub fn from_ops(ops: impl IntoIterator<Item = Operation>) -> Result<Self, CircuitError> {
        let mut m = Moment::new();
        for op in ops {
            m.push(op)?;
        }
        Ok(m)
    }

    /// The operations in this moment.
    #[inline]
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the moment holds no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when no operation in the moment touches any of `qubits`.
    pub fn is_free(&self, qubits: &[Qubit]) -> bool {
        self.ops
            .iter()
            .all(|op| op.support().iter().all(|q| !qubits.contains(q)))
    }

    /// Adds an operation, failing if it overlaps an existing one.
    pub fn push(&mut self, op: Operation) -> Result<(), CircuitError> {
        if !self.is_free(op.support()) {
            return Err(CircuitError::Invalid(format!(
                "operation {op} overlaps an operation already in the moment"
            )));
        }
        self.ops.push(op);
        Ok(())
    }

    /// All qubits touched by this moment.
    pub fn qubits(&self) -> FxHashSet<Qubit> {
        self.ops
            .iter()
            .flat_map(|op| op.support().iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn h(q: u32) -> Operation {
        Operation::gate(Gate::H, vec![Qubit(q)]).unwrap()
    }

    #[test]
    fn disjoint_ops_coexist() {
        let m = Moment::from_ops([h(0), h(1), h(2)]).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.qubits().len(), 3);
    }

    #[test]
    fn overlapping_ops_rejected() {
        let mut m = Moment::new();
        m.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap())
            .unwrap();
        assert!(m.push(h(1)).is_err());
        assert!(m.push(h(2)).is_ok());
    }

    #[test]
    fn is_free_checks_all_listed_qubits() {
        let m = Moment::from_ops([h(0)]).unwrap();
        assert!(m.is_free(&[Qubit(1), Qubit(2)]));
        assert!(!m.is_free(&[Qubit(1), Qubit(0)]));
    }
}

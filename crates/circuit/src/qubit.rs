//! Qubit identifiers.

use std::fmt;

/// A qubit on an integer line (the Cirq `LineQubit` substitute).
///
/// The wrapped index is the qubit's position; circuits address state-vector
/// amplitudes with bit `i` of a bitstring belonging to `Qubit(i)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(pub u32);

impl Qubit {
    /// The first `n` line qubits, `q0 .. q{n-1}`.
    pub fn range(n: usize) -> Vec<Qubit> {
        (0..n as u32).map(Qubit).collect()
    }

    /// The line index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(i: u32) -> Self {
        Qubit(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_produces_sequential_qubits() {
        let qs = Qubit::range(4);
        assert_eq!(qs.len(), 4);
        assert_eq!(qs[0], Qubit(0));
        assert_eq!(qs[3].index(), 3);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit(1) < Qubit(2));
        assert_eq!(format!("{}", Qubit(7)), "q7");
    }
}

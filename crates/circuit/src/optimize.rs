//! The multi-pass circuit optimizer: a composable [`PassPipeline`] of
//! pure `Circuit -> Circuit` rewrites that every execution path can run
//! behind a planner/simulator knob.
//!
//! The passes, in the order [`pipeline_for`] composes them:
//!
//! 1. [`cancel_inverse_pairs`] — drops adjacent gate pairs whose product
//!    is the identity up to global phase (`H·H`, `CX·CX`, `T·T†`, ...).
//! 2. [`reorder_commuting_gates`] — commutation-aware reordering:
//!    single-qubit gates sink left through syntactically-commuting
//!    multi-qubit gates (diagonal past diagonal, diagonal past a CNOT
//!    control, X-basis past a CNOT target), lengthening the fusible and
//!    cancellable runs the later passes feed on.
//! 3. [`lightcone_prune`] — dead-gate elimination: a reverse walk keeps
//!    only operations inside the causal cone of the measured (or
//!    caller-supplied observable) qubit set.
//! 4. [`fuse_two_qubit_runs`] / [`extract_diagonal_runs`] — merges
//!    maximal runs of gates on the same qubit pair into single `U4`
//!    matrices ([`Gate::U2`]), absorbing neighbouring single-qubit gates
//!    into the run; the diagonal-aware variant keeps maximal diagonal
//!    segments as their own entry-wise-diagonal matrices so the
//!    sampler's `skip_diagonal_updates` optimization keeps firing
//!    across merged segments.
//!
//! Every pass preserves the circuit's action on every observable
//! exactly — matrices are multiplied, never approximated; dropped gates
//! are provably outside every measured lightcone — so sampling
//! *distributions* and expectation values are unchanged even though the
//! gate sequence (and hence the seeded RNG stream) differs.
//!
//! [`optimize`] runs the configured pipeline to a fixpoint, which makes
//! the whole optimizer deterministic and idempotent:
//! `optimize(optimize(c)) == optimize(c)`.
//!
//! ```
//! use bgls_circuit::{optimize, Circuit, Gate, Operation, OptimizeConfig, Qubit};
//!
//! let mut c = Circuit::new();
//! c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap()); // cancels
//! c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
//! c.push(Operation::gate(Gate::Cz, vec![Qubit(0), Qubit(1)]).unwrap());
//! c.push(Operation::measure(vec![Qubit(0), Qubit(1)], "m").unwrap());
//!
//! let (opt, stats) = optimize(&c, &OptimizeConfig::default());
//! assert!(opt.num_operations() < c.num_operations());
//! assert_eq!(stats.ops_before, 5);
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Operation;
use crate::qubit::Qubit;
use crate::transform;
use bgls_linalg::{FxHashMap, FxHashSet, FxHasher, Matrix};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Fixpoint iteration cap for [`optimize`]: each round either strictly
/// shrinks the circuit or canonicalizes order, so real circuits settle
/// in 2-3 rounds; the cap only guards pathological inputs.
const MAX_ROUNDS: usize = 16;

/// Numerical tolerance for recognizing identity-up-to-phase products.
const IDENTITY_TOL: f64 = 1e-12;

/// Which optimizer passes run, and in what flavour.
///
/// The default enables every structure-preserving win (cancellation,
/// reordering, lightcone pruning, 1q- and 2q-run fusion) and leaves
/// [`extract_diagonal_runs`](OptimizeConfig::extract_diagonal_runs) off:
/// splitting merged runs at diagonality boundaries trades op count for
/// diagonal skips, which only pays when the executing simulator has
/// `skip_diagonal_updates` enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OptimizeConfig {
    /// Drop adjacent gate pairs whose product is the identity up to
    /// global phase ([`cancel_inverse_pairs`]).
    pub cancel_inverses: bool,
    /// Sink single-qubit gates left through syntactically-commuting
    /// multi-qubit gates ([`reorder_commuting_gates`]).
    pub reorder_commuting: bool,
    /// Drop operations outside the causal cone of the measured qubit
    /// set ([`lightcone_prune`]).
    pub lightcone: bool,
    /// Merge maximal single-qubit runs into one matrix per run
    /// ([`crate::merge_single_qubit_gates`]); subsumed by
    /// `fuse_two_qubit_runs` when that is also enabled.
    pub merge_single_qubit_runs: bool,
    /// Merge maximal same-pair two-qubit runs (and absorbed neighbour
    /// 1q gates) into single `U4` matrices ([`fuse_two_qubit_runs`]).
    pub fuse_two_qubit_runs: bool,
    /// Split merged runs at diagonality boundaries so maximal diagonal
    /// segments stay entry-wise diagonal ([`extract_diagonal_runs`]);
    /// only meaningful with `fuse_two_qubit_runs`.
    pub extract_diagonal_runs: bool,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            cancel_inverses: true,
            reorder_commuting: true,
            lightcone: true,
            merge_single_qubit_runs: true,
            fuse_two_qubit_runs: true,
            extract_diagonal_runs: false,
        }
    }
}

impl OptimizeConfig {
    /// Every pass disabled: [`optimize`] returns the circuit unchanged.
    pub fn off() -> Self {
        OptimizeConfig {
            cancel_inverses: false,
            reorder_commuting: false,
            lightcone: false,
            merge_single_qubit_runs: false,
            fuse_two_qubit_runs: false,
            extract_diagonal_runs: false,
        }
    }

    /// Every pass enabled, including diagonal-run extraction — the
    /// configuration for simulators running with
    /// `skip_diagonal_updates`.
    pub fn full() -> Self {
        OptimizeConfig {
            extract_diagonal_runs: true,
            ..OptimizeConfig::default()
        }
    }

    /// This configuration with the matrix-producing passes disabled.
    ///
    /// Fusion passes emit [`Gate::U1`]/[`Gate::U2`] matrices, which have
    /// no stabilizer effect — running them on a Clifford circuit would
    /// push it off the stabilizer backends. The surviving passes
    /// (cancellation, reordering, lightcone pruning) only drop or
    /// reorder *named* gates, so a Clifford circuit stays Clifford.
    pub fn stabilizer_safe(self) -> Self {
        OptimizeConfig {
            merge_single_qubit_runs: false,
            fuse_two_qubit_runs: false,
            extract_diagonal_runs: false,
            ..self
        }
    }

    /// True when at least one pass is enabled.
    pub fn enabled(&self) -> bool {
        self.cancel_inverses
            || self.reorder_commuting
            || self.lightcone
            || self.merge_single_qubit_runs
            || self.fuse_two_qubit_runs
    }

    /// Stable fingerprint of the pipeline configuration. Folded into
    /// plan fingerprints so optimized and raw executions of the same
    /// circuit can never collide in a result cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        // Version salt: bump when pass semantics change, so stale
        // cached results keyed under the old pipeline never alias.
        0x4247_4c53_0001_u64.hash(&mut h);
        [
            self.cancel_inverses,
            self.reorder_commuting,
            self.lightcone,
            self.merge_single_qubit_runs,
            self.fuse_two_qubit_runs,
            self.extract_diagonal_runs,
        ]
        .hash(&mut h);
        h.finish()
    }
}

/// What one pass application did to the operation count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name as registered in the pipeline.
    pub name: &'static str,
    /// Operations entering the pass.
    pub ops_before: usize,
    /// Operations leaving the pass.
    pub ops_after: usize,
    /// True when the pass changed the circuit structurally (it may
    /// reorder without changing the count).
    pub changed: bool,
}

/// Cumulative rewrite statistics for one [`optimize`] invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Operations in the input circuit.
    pub ops_before: usize,
    /// Operations in the optimized circuit.
    pub ops_after: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// One entry per pass application, in execution order (passes
    /// repeat across fixpoint rounds).
    pub passes: Vec<PassStats>,
}

impl RewriteStats {
    /// Baseline stats for an untouched circuit of `ops` operations.
    pub fn unchanged(ops: usize) -> Self {
        RewriteStats {
            ops_before: ops,
            ops_after: ops,
            rounds: 0,
            passes: Vec::new(),
        }
    }

    /// Names of the passes that changed the circuit, deduplicated in
    /// first-fired order — the `passes applied` line in job reports.
    pub fn passes_applied(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for p in &self.passes {
            if p.changed && !seen.contains(&p.name) {
                seen.push(p.name);
            }
        }
        seen
    }

    /// Fraction of operations removed (`0.0` for an untouched circuit).
    pub fn reduction(&self) -> f64 {
        if self.ops_before == 0 {
            0.0
        } else {
            1.0 - self.ops_after as f64 / self.ops_before as f64
        }
    }
}

/// A boxed pure circuit rewrite.
type PassFn = Arc<dyn Fn(&Circuit) -> Circuit + Send + Sync>;

/// An ordered, composable sequence of named circuit rewrites.
///
/// Each pass is a pure `Circuit -> Circuit` function; [`PassPipeline::run`]
/// applies them once in order and records per-pass [`PassStats`], and
/// [`PassPipeline::run_to_fixpoint`] iterates until the circuit's
/// structural hash stabilizes (the determinism/idempotence contract of
/// [`optimize`]).
#[derive(Clone, Default)]
pub struct PassPipeline {
    passes: Vec<(&'static str, PassFn)>,
}

impl PassPipeline {
    /// An empty pipeline (`run` is the identity).
    pub fn new() -> Self {
        PassPipeline { passes: Vec::new() }
    }

    /// Appends a named pass.
    pub fn with_pass(
        mut self,
        name: &'static str,
        pass: impl Fn(&Circuit) -> Circuit + Send + Sync + 'static,
    ) -> Self {
        self.passes.push((name, Arc::new(pass)));
        self
    }

    /// Registered pass count.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Applies every pass once, in order, recording per-pass stats.
    pub fn run(&self, circuit: &Circuit) -> (Circuit, RewriteStats) {
        let mut stats = RewriteStats::unchanged(circuit.num_operations());
        let mut current = circuit.clone();
        let mut hash = current.structural_hash();
        for (name, pass) in &self.passes {
            let before = current.num_operations();
            let next = pass(&current);
            let next_hash = next.structural_hash();
            stats.passes.push(PassStats {
                name,
                ops_before: before,
                ops_after: next.num_operations(),
                changed: next_hash != hash,
            });
            current = next;
            hash = next_hash;
        }
        stats.rounds = 1;
        stats.ops_after = current.num_operations();
        (current, stats)
    }

    /// Iterates [`PassPipeline::run`] until the circuit's structural
    /// hash stabilizes, capped at `max_rounds`.
    pub fn run_to_fixpoint(&self, circuit: &Circuit, max_rounds: usize) -> (Circuit, RewriteStats) {
        let mut stats = RewriteStats::unchanged(circuit.num_operations());
        if self.is_empty() {
            return (circuit.clone(), stats);
        }
        let mut current = circuit.clone();
        let mut hash = current.structural_hash();
        for _ in 0..max_rounds {
            let (next, round) = self.run(&current);
            stats.rounds += 1;
            stats.passes.extend(round.passes);
            let next_hash = next.structural_hash();
            current = next;
            if next_hash == hash {
                break;
            }
            hash = next_hash;
        }
        stats.ops_after = current.num_operations();
        (current, stats)
    }
}

impl std::fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.passes.iter().map(|(name, _)| name))
            .finish()
    }
}

/// The pipeline `config` describes, in canonical order: cancellation,
/// reordering, lightcone pruning, then fusion (2q-run fusion subsumes
/// the 1q merge when both are enabled).
pub fn pipeline_for(config: &OptimizeConfig) -> PassPipeline {
    let mut p = PassPipeline::new();
    if config.cancel_inverses {
        p = p.with_pass("cancel-inverses", cancel_inverse_pairs);
    }
    if config.reorder_commuting {
        p = p.with_pass("reorder-commuting", reorder_commuting_gates);
    }
    if config.lightcone {
        p = p.with_pass("lightcone", lightcone_prune);
    }
    if config.fuse_two_qubit_runs {
        if config.extract_diagonal_runs {
            p = p.with_pass("fuse-2q-diagonal-aware", extract_diagonal_runs);
        } else {
            p = p.with_pass("fuse-2q", fuse_two_qubit_runs);
        }
    } else if config.merge_single_qubit_runs {
        p = p.with_pass("merge-1q", transform::fuse);
    }
    p
}

/// Runs the pipeline `config` describes to a fixpoint and returns the
/// optimized circuit with its rewrite statistics.
///
/// Deterministic and idempotent: the same input always produces the
/// same output, and `optimize(optimize(c)) == optimize(c)`.
pub fn optimize(circuit: &Circuit, config: &OptimizeConfig) -> (Circuit, RewriteStats) {
    pipeline_for(config).run_to_fixpoint(circuit, MAX_ROUNDS)
}

/// Drops adjacent gate pairs whose product is the identity up to global
/// phase — `H·H`, `CX·CX`, `T·T†`, `S·S†`, and any matrix pair that
/// multiplies out to `e^{iφ}I`.
///
/// "Adjacent" means no other operation touches any of the pair's qubits
/// between the two gates, and both act on the same qubit *set* (a
/// reversed two-qubit listing is handled by permuting the matrix).
/// Measurements, channels, and parameterized gates are barriers. The
/// scan repeats until no pair cancels, so towers like `X·X·X·X` vanish
/// entirely.
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Operation> = circuit.all_operations().cloned().collect();
    loop {
        let mut changed = false;
        // Surviving ops so far; per-qubit index of the last survivor.
        let mut kept: Vec<Option<Operation>> = Vec::with_capacity(ops.len());
        let mut last: FxHashMap<Qubit, usize> = FxHashMap::default();
        for op in ops {
            if let Some(prev_idx) = cancellable_predecessor(&op, &kept, &last) {
                let prev = kept[prev_idx].take().expect("predecessor is a survivor");
                if product_is_identity(&prev, &op) {
                    for q in op.support() {
                        last.remove(q);
                    }
                    changed = true;
                    continue;
                }
                kept[prev_idx] = Some(prev);
            }
            let idx = kept.len();
            for q in op.support() {
                last.insert(*q, idx);
            }
            kept.push(Some(op));
        }
        ops = kept.into_iter().flatten().collect();
        if !changed {
            break;
        }
    }
    Circuit::from_ops(ops)
}

/// Index of the surviving op that `op` could cancel against: the unique
/// last-toucher of every qubit in `op`'s support, acting on the same
/// qubit set, both sides non-parameterized unitaries of arity <= 3.
fn cancellable_predecessor(
    op: &Operation,
    kept: &[Option<Operation>],
    last: &FxHashMap<Qubit, usize>,
) -> Option<usize> {
    if !is_cancellable(op) {
        return None;
    }
    let mut iter = op.support().iter();
    let first = iter.next()?;
    let idx = *last.get(first)?;
    for q in iter {
        if last.get(q) != Some(&idx) {
            return None;
        }
    }
    let prev = kept[idx].as_ref()?;
    if !is_cancellable(prev) || prev.support().len() != op.support().len() {
        return None;
    }
    // Same qubit set (order may differ for two-qubit gates).
    if !op.support().iter().all(|q| prev.support().contains(q)) {
        return None;
    }
    Some(idx)
}

fn is_cancellable(op: &Operation) -> bool {
    op.as_gate()
        .map(|g| !g.is_parameterized() && g.arity() <= 3)
        .unwrap_or(false)
}

/// True when applying `first` then `second` is the identity up to
/// global phase.
fn product_is_identity(first: &Operation, second: &Operation) -> bool {
    let (Some(f), Some(s)) = (first.as_gate(), second.as_gate()) else {
        return false;
    };
    let (Ok(mf), Ok(ms)) = (f.unitary(), s.unitary()) else {
        return false;
    };
    let ms = matrix_in_order(&ms, second.support(), first.support());
    transform::is_identity_up_to_phase(&ms.matmul(&mf), IDENTITY_TOL)
}

/// Sinks single-qubit gates left (earlier) through contiguous
/// syntactically-commuting multi-qubit gates: a diagonal gate passes
/// diagonal gates and CNOT/Toffoli controls, an X-basis gate
/// (`X`, `√X`, `Rx`) passes CNOT/Toffoli targets.
///
/// The move stops at the first operation on the same qubit that is not
/// a commuting multi-qubit gate — in particular at other single-qubit
/// gates, which preserves per-qubit gate order and makes the pass
/// idempotent. Reordering lengthens the adjacent runs that
/// [`cancel_inverse_pairs`] and [`fuse_two_qubit_runs`] feed on.
pub fn reorder_commuting_gates(circuit: &Circuit) -> Circuit {
    let mut out: Vec<Operation> = Vec::new();
    for op in circuit.all_operations() {
        let movable = op
            .as_gate()
            .map(|g| g.arity() == 1 && !g.is_parameterized())
            .unwrap_or(false);
        if !movable {
            out.push(op.clone());
            continue;
        }
        let g = op.as_gate().expect("movable implies gate");
        let q = op.support()[0];
        let mut dest = out.len();
        while dest > 0 {
            let prev = &out[dest - 1];
            if !prev.support().contains(&q) {
                break;
            }
            let passes = prev
                .as_gate()
                .map(|h| {
                    h.arity() >= 2
                        && !h.is_parameterized()
                        && commutes_with_earlier(g, q, h, prev.support())
                })
                .unwrap_or(false);
            if !passes {
                break;
            }
            dest -= 1;
        }
        out.insert(dest, op.clone());
    }
    Circuit::from_ops(out)
}

/// Syntactic commutation of 1q gate `g` on `q` with the earlier
/// multi-qubit gate `h` on `hq` — sound rules only, no matrix algebra.
fn commutes_with_earlier(g: &Gate, q: Qubit, h: &Gate, hq: &[Qubit]) -> bool {
    let g_diag = g.is_diagonal();
    if g_diag && h.is_diagonal() {
        return true;
    }
    let g_x_basis = matches!(g, Gate::X | Gate::SqrtX | Gate::SqrtXDag | Gate::Rx(_));
    match h {
        Gate::Cnot => (g_diag && hq[0] == q) || (g_x_basis && hq[1] == q),
        Gate::Ccx => (g_diag && (hq[0] == q || hq[1] == q)) || (g_x_basis && hq[2] == q),
        Gate::Cswap => g_diag && hq[0] == q,
        _ => false,
    }
}

/// Dead-gate elimination against the measured qubit set: a reverse walk
/// keeps measurements (their recorded outcomes are user-visible) and
/// every operation whose support intersects the growing causal cone;
/// everything else provably cannot affect any recorded outcome and is
/// dropped. Circuits without measurements are returned unchanged —
/// there is no output to anchor the cone on (use
/// [`lightcone_prune_for`] with explicit targets instead).
pub fn lightcone_prune(circuit: &Circuit) -> Circuit {
    if !circuit.has_measurements() {
        return circuit.clone();
    }
    lightcone_prune_for(circuit, &[])
}

/// [`lightcone_prune`] with an explicit target qubit set seeding the
/// cone — the observable-support variant the planner uses for
/// expectation deliverables. Measurements are always kept (and extend
/// the cone); with no targets and no measurements the circuit is
/// returned unchanged.
pub fn lightcone_prune_for(circuit: &Circuit, targets: &[Qubit]) -> Circuit {
    if targets.is_empty() && !circuit.has_measurements() {
        return circuit.clone();
    }
    let ops: Vec<&Operation> = circuit.all_operations().collect();
    let mut live: FxHashSet<Qubit> = targets.iter().copied().collect();
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        let in_cone = op.is_measurement() || op.support().iter().any(|q| live.contains(q));
        if in_cone {
            keep[i] = true;
            live.extend(op.support().iter().copied());
        }
    }
    Circuit::from_ops(
        ops.iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(op, _)| (*op).clone()),
    )
}

/// Merges maximal runs of gates on the same qubit pair into single
/// `U4` matrices ([`Gate::U2`]), absorbing neighbouring single-qubit
/// gates into the run; lone single-qubit runs merge to one [`Gate::U1`].
///
/// A run on pair `(a, b)` opens at a two-qubit gate and accumulates
/// every later gate touching only `a`/`b` until a barrier (measurement,
/// channel, parameterized or 3+-qubit gate) or a gate pairing `a` or
/// `b` with a third qubit closes it. Matrix products are exact; runs
/// whose product is the identity up to phase are dropped; runs of a
/// single operation re-emit that operation verbatim (which makes the
/// pass idempotent).
pub fn fuse_two_qubit_runs(circuit: &Circuit) -> Circuit {
    fuse_runs(circuit, false)
}

/// Diagonal-aware variant of [`fuse_two_qubit_runs`]: each run is split
/// into maximal diagonal / non-diagonal segments, merged separately, so
/// a diagonal segment (`CZ·S·CPhase...`) emits an entry-wise-diagonal
/// matrix and the sampler's `skip_diagonal_updates` optimization keeps
/// firing across the merged circuit.
pub fn extract_diagonal_runs(circuit: &Circuit) -> Circuit {
    fuse_runs(circuit, true)
}

/// One merged segment of a run: the accumulated matrix over the subset
/// of run qubits touched so far (2x2 while only one qubit of a pair is
/// touched, promoted to 4x4 on demand).
struct Seg {
    diagonal: bool,
    touched: Vec<Qubit>,
    m: Matrix,
}

/// An open fusion run on one qubit or one qubit pair.
struct Run {
    /// Fixed support, in the first two-qubit gate's listed order.
    qubits: Vec<Qubit>,
    segs: Vec<Seg>,
    /// Original operations, re-emitted verbatim for singleton runs.
    ops: Vec<Operation>,
}

impl Run {
    /// Multiplies `m` (over `mq`, a subset of the run support) into the
    /// current segment, starting a new segment at diagonality
    /// boundaries when `split` is set.
    fn absorb(&mut self, m: &Matrix, mq: &[Qubit], diagonal: bool, split: bool) {
        // Normalize two-qubit matrices to the run's qubit order.
        let (m, tq) = if mq.len() == 2 {
            if mq == self.qubits.as_slice() {
                (m.clone(), self.qubits.clone())
            } else {
                (swap_conjugate(m), self.qubits.clone())
            }
        } else {
            (m.clone(), vec![mq[0]])
        };
        match self.segs.last_mut() {
            Some(seg) if !split || seg.diagonal == diagonal => {
                if seg.touched == tq {
                    seg.m = m.matmul(&seg.m);
                } else {
                    let a = embed_in_pair(&seg.m, &seg.touched, &self.qubits);
                    let b = embed_in_pair(&m, &tq, &self.qubits);
                    seg.m = b.matmul(&a);
                    seg.touched = self.qubits.clone();
                }
                seg.diagonal = seg.diagonal && diagonal;
            }
            _ => self.segs.push(Seg {
                diagonal,
                touched: tq,
                m,
            }),
        }
    }

    /// Emits the run: singleton runs verbatim, otherwise one `U1`/`U2`
    /// per segment, skipping segments that fused to the identity.
    fn emit(self, out: &mut Vec<Operation>) {
        if self.ops.len() == 1 {
            out.extend(self.ops);
            return;
        }
        for seg in self.segs {
            if transform::is_identity_up_to_phase(&seg.m, IDENTITY_TOL) {
                continue;
            }
            let gate = if seg.touched.len() == 1 {
                Gate::U1(Arc::new(seg.m))
            } else {
                Gate::U2(Arc::new(seg.m))
            };
            out.push(
                Operation::gate(gate, seg.touched)
                    .expect("run qubits are distinct and arity-matched"),
            );
        }
    }
}

fn fuse_runs(circuit: &Circuit, split_diagonal: bool) -> Circuit {
    let mut open: Vec<Option<Run>> = Vec::new();
    let mut owner: FxHashMap<Qubit, usize> = FxHashMap::default();
    let mut out: Vec<Operation> = Vec::new();

    fn flush(
        i: usize,
        open: &mut [Option<Run>],
        owner: &mut FxHashMap<Qubit, usize>,
        out: &mut Vec<Operation>,
    ) {
        if let Some(run) = open[i].take() {
            for q in &run.qubits {
                owner.remove(q);
            }
            run.emit(out);
        }
    }

    for op in circuit.all_operations() {
        let fusible = op
            .as_gate()
            .map(|g| (1..=2).contains(&g.arity()) && !g.is_parameterized())
            .unwrap_or(false);
        if !fusible {
            // Barrier: close every run it touches, emit verbatim.
            let mut to_flush: Vec<usize> = op
                .support()
                .iter()
                .filter_map(|q| owner.get(q).copied())
                .collect();
            to_flush.sort_unstable();
            to_flush.dedup();
            for i in to_flush {
                flush(i, &mut open, &mut owner, &mut out);
            }
            out.push(op.clone());
            continue;
        }
        let g = op.as_gate().expect("fusible implies gate");
        let m = g.unitary().expect("non-parameterized gate has a unitary");
        let diag = g.is_diagonal();
        let qs = op.support();
        if qs.len() == 1 {
            let q = qs[0];
            if let Some(&i) = owner.get(&q) {
                let run = open[i].as_mut().expect("owner points at an open run");
                run.absorb(&m, qs, diag, split_diagonal);
                run.ops.push(op.clone());
            } else {
                let i = open.len();
                open.push(Some(Run {
                    qubits: vec![q],
                    segs: vec![Seg {
                        diagonal: diag,
                        touched: vec![q],
                        m,
                    }],
                    ops: vec![op.clone()],
                }));
                owner.insert(q, i);
            }
            continue;
        }
        let (a, b) = (qs[0], qs[1]);
        let (ia, ib) = (owner.get(&a).copied(), owner.get(&b).copied());
        if let (Some(i), true) = (ia, ia == ib) {
            // Same open pair (possibly listed in the other order).
            let run = open[i].as_mut().expect("owner points at an open run");
            run.absorb(&m, qs, diag, split_diagonal);
            run.ops.push(op.clone());
            continue;
        }
        // Open a new pair run: absorb lone 1q runs on a/b, flush runs
        // pairing a/b with a third qubit.
        let mut absorbed: Vec<Run> = Vec::new();
        for q in [a, b] {
            if let Some(&i) = owner.get(&q) {
                let lone_1q = open[i]
                    .as_ref()
                    .map(|r| r.qubits.len() == 1)
                    .unwrap_or(false);
                if lone_1q {
                    let r = open[i].take().expect("owner points at an open run");
                    owner.remove(&q);
                    absorbed.push(r);
                } else {
                    flush(i, &mut open, &mut owner, &mut out);
                }
            }
        }
        let i = open.len();
        let mut run = Run {
            qubits: qs.to_vec(),
            segs: Vec::new(),
            ops: Vec::new(),
        };
        // Absorbed 1q runs precede this gate in time and act on
        // disjoint qubits, so feeding them in either order is exact.
        for r in absorbed {
            for seg in r.segs {
                run.absorb(&seg.m, &seg.touched, seg.diagonal, split_diagonal);
            }
            run.ops.extend(r.ops);
        }
        run.absorb(&m, qs, diag, split_diagonal);
        run.ops.push(op.clone());
        open.push(Some(run));
        owner.insert(a, i);
        owner.insert(b, i);
    }
    for i in 0..open.len() {
        flush(i, &mut open, &mut owner, &mut out);
    }
    Circuit::from_ops(out)
}

/// Permutes `m` (given over `from`) into `to`'s qubit order, for any
/// listing of the same qubit set. The first listed qubit is the most
/// significant bit of the matrix index (the Cirq convention).
fn matrix_in_order(m: &Matrix, from: &[Qubit], to: &[Qubit]) -> Matrix {
    if from == to {
        return m.clone();
    }
    let n = from.len();
    debug_assert_eq!(to.len(), n, "permutation requires the same qubit set");
    let dim = 1usize << n;
    debug_assert_eq!(m.rows(), dim);
    // `to` position -> `from` position of the same qubit.
    let pos: Vec<usize> = to
        .iter()
        .map(|q| {
            from.iter()
                .position(|p| p == q)
                .expect("permutation requires the same qubit set")
        })
        .collect();
    // Basis index over `to` -> the same basis state's index over `from`.
    let remap = |i: usize| -> usize {
        pos.iter().enumerate().fold(0usize, |acc, (p, &fp)| {
            acc | (((i >> (n - 1 - p)) & 1) << (n - 1 - fp))
        })
    };
    let mut out = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            out[(i, j)] = m[(remap(i), remap(j))];
        }
    }
    out
}

/// `SWAP · m · SWAP` — the 4x4 matrix re-expressed with its qubit
/// listing reversed.
fn swap_conjugate(m: &Matrix) -> Matrix {
    let perm = [0usize, 2, 1, 3]; // basis index with the two bits swapped
    let mut out = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            out[(i, j)] = m[(perm[i], perm[j])];
        }
    }
    out
}

/// Embeds `m` (over `from`, a subset of the pair `pair`) into the full
/// 4x4 matrix over `pair`. The first listed qubit is the most
/// significant bit of the matrix index (the Cirq convention).
fn embed_in_pair(m: &Matrix, from: &[Qubit], pair: &[Qubit]) -> Matrix {
    if from == pair {
        return m.clone();
    }
    debug_assert_eq!(from.len(), 1, "partial support must be a single qubit");
    let id = Matrix::identity(2);
    if from[0] == pair[0] {
        m.kron(&id)
    } else {
        id.kron(&m.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{generate_random_circuit, RandomCircuitParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn op(g: Gate, qs: &[u32]) -> Operation {
        Operation::gate(g, qs.iter().map(|&q| Qubit(q)).collect::<Vec<_>>()).unwrap()
    }

    fn measured(mut c: Circuit, n: u32) -> Circuit {
        c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        c
    }

    fn unitary_eq(a: &Circuit, b: &Circuit, n: usize) {
        let ua = a.unitary(n).unwrap();
        let ub = b.unitary(n).unwrap();
        // Compare up to global phase: find the first non-negligible
        // entry and align phases there.
        let mut phase = None;
        'outer: for i in 0..ua.rows() {
            for j in 0..ua.cols() {
                if ua[(i, j)].abs() > 1e-8 {
                    phase = Some(ub[(i, j)] * ua[(i, j)].conj() * (1.0 / ua[(i, j)].abs().powi(2)));
                    break 'outer;
                }
            }
        }
        let phase = phase.unwrap();
        assert!(
            (phase.abs() - 1.0).abs() < 1e-8,
            "phase factor must be unimodular, got {phase:?}"
        );
        let scaled = ua.scale(phase);
        assert!(
            scaled.approx_eq(&ub, 1e-8),
            "unitaries differ beyond global phase"
        );
    }

    #[test]
    fn hh_and_cxcx_cancel() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::T, &[1]));
        let out = cancel_inverse_pairs(&c);
        assert_eq!(out.num_operations(), 1);
    }

    #[test]
    fn cancellation_towers_collapse() {
        let mut c = Circuit::new();
        for _ in 0..4 {
            c.push(op(Gate::X, &[0]));
        }
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 0);
    }

    #[test]
    fn reversed_qubit_listing_still_cancels() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cz, &[0, 1]));
        c.push(op(Gate::Cz, &[1, 0]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 0);
    }

    #[test]
    fn permuted_three_qubit_listings_cancel_exactly_when_equal() {
        // Ccz is symmetric in all three qubits: every listing cancels.
        for perm in [[0, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let mut c = Circuit::new();
            c.push(op(Gate::Ccz, &[0, 1, 2]));
            c.push(op(Gate::Ccz, &perm));
            assert_eq!(cancel_inverse_pairs(&c).num_operations(), 0, "{perm:?}");
        }
        // Ccx controls commute with each other but not with the target.
        let mut c = Circuit::new();
        c.push(op(Gate::Ccx, &[0, 1, 2]));
        c.push(op(Gate::Ccx, &[1, 0, 2]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 0);
        let mut c = Circuit::new();
        c.push(op(Gate::Ccx, &[0, 1, 2]));
        c.push(op(Gate::Ccx, &[2, 1, 0]));
        let out = cancel_inverse_pairs(&c);
        assert_eq!(out.num_operations(), 2);
        unitary_eq(&c, &out, 3);
        // Cswap is symmetric only in its two swap targets.
        let mut c = Circuit::new();
        c.push(op(Gate::Cswap, &[0, 1, 2]));
        c.push(op(Gate::Cswap, &[0, 2, 1]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 0);
        let mut c = Circuit::new();
        c.push(op(Gate::Cswap, &[0, 1, 2]));
        c.push(op(Gate::Cswap, &[1, 0, 2]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 2);
    }

    #[test]
    fn matrix_in_order_matches_circuit_unitary_on_permutations() {
        // Re-expressing a matrix over a permuted qubit listing must
        // leave its embedding in the full space unchanged.
        use crate::circuit::embed_unitary;
        let m = Gate::Ccx.unitary().unwrap();
        let to: Vec<Qubit> = (0..3).map(Qubit).collect();
        for perm in [[0u32, 1, 2], [1, 0, 2], [2, 0, 1], [2, 1, 0]] {
            let from: Vec<Qubit> = perm.iter().map(|&q| Qubit(q)).collect();
            let got = embed_unitary(&matrix_in_order(&m, &from, &to), &to, 3);
            let want = embed_unitary(&m, &from, 3);
            assert!(got.approx_eq(&want, 1e-12), "{perm:?}");
        }
    }

    #[test]
    fn interposed_ops_block_cancellation() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::H, &[0]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 3);
        // measurement barrier
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        c.push(op(Gate::H, &[0]));
        assert_eq!(cancel_inverse_pairs(&c).num_operations(), 3);
    }

    #[test]
    fn reorder_enables_cx_cancellation() {
        // T on the control commutes with CX: reorder + cancel kills the
        // CX pair without leaving the named-gate (Clifford+T) set.
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        let reordered = reorder_commuting_gates(&c);
        let out = cancel_inverse_pairs(&reordered);
        assert_eq!(out.num_operations(), 1);
        unitary_eq(&c, &out, 2);
    }

    #[test]
    fn reorder_moves_x_past_cnot_target() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::X, &[1]));
        let out = reorder_commuting_gates(&c);
        let first = out.all_operations().next().unwrap();
        assert_eq!(first.as_gate(), Some(&Gate::X));
        unitary_eq(&c, &out, 2);
    }

    #[test]
    fn reorder_is_idempotent_on_disjoint_movables() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::X, &[1]));
        let once = reorder_commuting_gates(&c);
        let twice = reorder_commuting_gates(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn reorder_never_moves_past_non_commuting_gates() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::X, &[0])); // X on the control does NOT commute
        let out = reorder_commuting_gates(&c);
        let first = out.all_operations().next().unwrap();
        assert_eq!(first.as_gate(), Some(&Gate::Cnot));
    }

    #[test]
    fn lightcone_drops_gates_outside_the_measured_cone() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::H, &[5])); // never measured, never entangled
        c.push(Operation::measure(vec![Qubit(0), Qubit(1)], "m").unwrap());
        let out = lightcone_prune(&c);
        assert_eq!(out.num_operations(), 3);
        assert!(out
            .all_operations()
            .all(|o| !o.support().contains(&Qubit(5))));
    }

    #[test]
    fn lightcone_keeps_everything_in_the_cone() {
        // The CNOT chain drags every qubit into the cone of q2.
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::Cnot, &[1, 2]));
        c.push(Operation::measure(vec![Qubit(2)], "m").unwrap());
        assert_eq!(lightcone_prune(&c).num_operations(), 4);
    }

    #[test]
    fn lightcone_without_measurements_is_a_noop() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[1]));
        assert_eq!(lightcone_prune(&c), c);
    }

    #[test]
    fn lightcone_for_targets_prunes_to_the_observable_cone() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::T, &[3]));
        let out = lightcone_prune_for(&c, &[Qubit(0)]);
        assert_eq!(out.num_operations(), 1);
        assert_eq!(out.all_operations().next().unwrap().support(), &[Qubit(0)]);
    }

    #[test]
    fn brickwork_brick_fuses_to_one_u2() {
        // 1q dust + CZ + 1q dust on one pair: everything merges.
        let mut c = Circuit::new();
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::H, &[1]));
        c.push(op(Gate::Cz, &[0, 1]));
        c.push(op(Gate::SqrtX, &[0]));
        c.push(op(Gate::S, &[1]));
        let out = fuse_two_qubit_runs(&c);
        assert_eq!(out.num_operations(), 1);
        let gate = out.all_operations().next().unwrap().as_gate().unwrap();
        assert!(matches!(gate, Gate::U2(_)));
        unitary_eq(&c, &out, 2);
    }

    #[test]
    fn adjacent_same_pair_2q_gates_merge_even_reversed() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::Cnot, &[1, 0]));
        c.push(op(Gate::Swap, &[0, 1]));
        let out = fuse_two_qubit_runs(&c);
        assert_eq!(out.num_operations(), 1);
        unitary_eq(&c, &out, 2);
    }

    #[test]
    fn mismatched_pairs_close_runs() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cz, &[0, 1]));
        c.push(op(Gate::Cz, &[1, 2])); // shares q1: closes the (0,1) run
        let out = fuse_two_qubit_runs(&c);
        assert_eq!(out.num_operations(), 2);
        unitary_eq(&c, &out, 3);
    }

    #[test]
    fn lone_1q_runs_merge_to_u1_not_u2() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::H, &[3]));
        let out = fuse_two_qubit_runs(&c);
        assert_eq!(out.num_operations(), 2);
        for o in out.all_operations() {
            assert_eq!(o.support().len(), 1, "no arity inflation for 1q runs");
        }
        unitary_eq(&c, &out, 4);
    }

    #[test]
    fn diagonal_extraction_splits_segments() {
        // CZ·S (diagonal) then H (not) then CZ (diagonal): the
        // diagonal-aware pass keeps the diagonal segments diagonal.
        let mut c = Circuit::new();
        c.push(op(Gate::Cz, &[0, 1]));
        c.push(op(Gate::S, &[0]));
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cz, &[0, 1]));
        let out = extract_diagonal_runs(&c);
        let gates: Vec<&Gate> = out.all_operations().map(|o| o.as_gate().unwrap()).collect();
        assert_eq!(gates.len(), 3);
        assert!(
            gates[0].is_diagonal(),
            "leading CZ·S segment stays diagonal"
        );
        assert!(!gates[1].is_diagonal());
        assert!(gates[2].is_diagonal());
        unitary_eq(&c, &out, 2);
        // The plain pass merges the same run into a single U2.
        assert_eq!(fuse_two_qubit_runs(&c).num_operations(), 1);
    }

    #[test]
    fn barriers_flush_runs_verbatim() {
        let mut c = Circuit::new();
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::Cz, &[0, 1]));
        c.push(Operation::measure(vec![Qubit(0)], "mid").unwrap());
        c.push(op(Gate::T, &[0]));
        let out = fuse_two_qubit_runs(&c);
        // run(T,CZ) | measure | T
        assert_eq!(out.num_operations(), 3);
        assert!(out.has_measurements());
    }

    #[test]
    fn optimize_is_deterministic_and_idempotent() {
        let mut rng = StdRng::seed_from_u64(2023);
        let params = RandomCircuitParams {
            qubits: 5,
            moments: 30,
            op_density: 0.9,
            gate_set: vec![
                Gate::H,
                Gate::S,
                Gate::T,
                Gate::X,
                Gate::SqrtX,
                Gate::Cnot,
                Gate::Cz,
            ],
        };
        for trial in 0..8 {
            let c = measured(generate_random_circuit(&params, &mut rng), 5);
            for config in [
                OptimizeConfig::default(),
                OptimizeConfig::full(),
                OptimizeConfig::default().stabilizer_safe(),
            ] {
                let (once, _) = optimize(&c, &config);
                let (again, _) = optimize(&c, &config);
                assert_eq!(once, again, "trial {trial}: determinism");
                let (twice, _) = optimize(&once, &config);
                assert_eq!(once, twice, "trial {trial}: idempotence");
            }
        }
    }

    #[test]
    fn optimize_preserves_the_unitary_action() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = RandomCircuitParams {
            qubits: 4,
            moments: 25,
            op_density: 0.9,
            gate_set: vec![Gate::H, Gate::S, Gate::T, Gate::X, Gate::Cnot, Gate::Cz],
        };
        for _ in 0..5 {
            let c = generate_random_circuit(&params, &mut rng);
            // No measurements: disable lightcone (nothing anchors it)
            // and compare full unitaries up to global phase.
            let config = OptimizeConfig {
                lightcone: false,
                ..OptimizeConfig::full()
            };
            let (opt, stats) = optimize(&c, &config);
            assert!(stats.ops_after <= stats.ops_before);
            unitary_eq(&c, &opt, 4);
        }
    }

    #[test]
    fn stabilizer_safe_pipeline_keeps_circuits_clifford() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::S, &[1]));
        c.push(op(Gate::Cnot, &[0, 1]));
        let c = measured(c, 2);
        let (opt, _) = optimize(&c, &OptimizeConfig::default().stabilizer_safe());
        assert!(opt.is_clifford(), "no matrix gates may appear");
        assert!(opt.num_operations() < c.num_operations(), "H·H cancelled");
    }

    #[test]
    fn off_config_is_the_identity() {
        let c = measured(Circuit::from_ops([op(Gate::H, &[0]), op(Gate::H, &[0])]), 1);
        let (opt, stats) = optimize(&c, &OptimizeConfig::off());
        assert_eq!(opt, c);
        assert_eq!(stats.rounds, 0);
        assert!(stats.passes_applied().is_empty());
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = OptimizeConfig::default().fingerprint();
        let b = OptimizeConfig::off().fingerprint();
        let c = OptimizeConfig::full().fingerprint();
        let d = OptimizeConfig::default().stabilizer_safe().fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn rewrite_stats_report_passes_applied() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::T, &[1]));
        c.push(op(Gate::Cz, &[0, 1]));
        let c = measured(c, 2);
        let (_, stats) = optimize(&c, &OptimizeConfig::default());
        let applied = stats.passes_applied();
        assert!(applied.contains(&"cancel-inverses"), "{applied:?}");
        assert!(stats.reduction() > 0.0);
    }

    #[test]
    fn pipeline_debug_lists_pass_names() {
        let p = pipeline_for(&OptimizeConfig::default());
        let dbg = format!("{p:?}");
        assert!(
            dbg.contains("cancel-inverses") && dbg.contains("fuse-2q"),
            "{dbg}"
        );
        assert_eq!(pipeline_for(&OptimizeConfig::off()).len(), 0);
        assert!(pipeline_for(&OptimizeConfig::off()).is_empty());
    }

    #[test]
    fn channels_are_barriers_for_every_pass() {
        use crate::channel::Channel;
        // H (noise) H on the same qubit: the pair must NOT cancel, the
        // H gates must NOT fuse across the channel, and the lightcone
        // must keep the channel (it acts on a measured qubit).
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(Operation::channel(Channel::bit_flip(0.25).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(Operation::channel(Channel::depolarizing(0.1).unwrap(), vec![Qubit(1)]).unwrap());
        c.push(op(Gate::Cnot, &[0, 1]));
        let c = measured(c, 2);
        let (opt, _) = optimize(&c, &OptimizeConfig::full());
        let channels: Vec<_> = opt
            .all_operations()
            .filter(|o| matches!(o.kind, crate::op::OpKind::Channel { .. }))
            .collect();
        assert_eq!(channels.len(), 2, "every channel must survive intact");
        // Order relative to overlapping gates is preserved: each
        // CNOT stays on its own side of the depolarizing channel.
        let kinds: Vec<bool> = opt
            .all_operations()
            .filter(|o| o.support().contains(&Qubit(1)) && !o.is_measurement())
            .map(|o| o.as_gate().is_some())
            .collect();
        assert_eq!(
            kinds,
            vec![true, false, true],
            "gate / channel / gate interleaving on qubit 1 must hold"
        );
        // The H pair straddling the bit-flip channel must both survive:
        // a gate before it, and a gate after it (possibly fused into
        // the CNOT run) — never cancelled through the channel.
        let q0: Vec<bool> = opt
            .all_operations()
            .filter(|o| o.support().contains(&Qubit(0)) && !o.is_measurement())
            .map(|o| o.as_gate().is_some())
            .collect();
        assert!(
            q0.len() >= 3 && q0[0] && !q0[1] && q0[2..].iter().any(|&g| g),
            "H·H across a channel must not cancel: {q0:?}"
        );
    }

    #[test]
    fn swap_conjugate_reverses_cnot() {
        // CNOT listed (control, target) vs (target, control).
        let cx = Gate::Cnot.unitary().unwrap();
        let flipped = swap_conjugate(&cx);
        // flipped should equal the matrix of CNOT with control on the
        // LEAST significant qubit: |x y> -> |x^y y>.
        let mut expect = Matrix::zeros(4, 4);
        for x in 0..2usize {
            for y in 0..2usize {
                let from = x * 2 + y;
                let to = (x ^ y) * 2 + y;
                expect[(to, from)] = bgls_linalg::C64::ONE;
            }
        }
        assert!(flipped.approx_eq(&expect, 1e-12));
    }
}

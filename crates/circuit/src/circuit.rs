//! Circuits: ordered moments of operations, with append strategies,
//! parameter resolution, and whole-circuit unitaries for verification.

use crate::error::CircuitError;
use crate::moment::Moment;
use crate::op::{OpKind, Operation};
use crate::param::ParamResolver;
use crate::qubit::Qubit;
use bgls_linalg::{Matrix, C64};

/// Where a newly appended operation lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InsertStrategy {
    /// Slide the operation as early as possible: into the latest suffix of
    /// moments whose qubits are all free (Cirq's `EARLIEST`). The default.
    #[default]
    Earliest,
    /// Always start a new moment (Cirq's `NEW_THEN_INLINE` without the
    /// inline part).
    NewMoment,
    /// Append into the final moment if free, else start a new one.
    Inline,
}

/// A quantum circuit: an ordered list of [`Moment`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    moments: Vec<Moment>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a circuit by appending operations with the
    /// [`InsertStrategy::Earliest`] strategy.
    pub fn from_ops(ops: impl IntoIterator<Item = Operation>) -> Self {
        let mut c = Circuit::new();
        for op in ops {
            c.append(op, InsertStrategy::Earliest);
        }
        c
    }

    /// The circuit's moments.
    #[inline]
    pub fn moments(&self) -> &[Moment] {
        &self.moments
    }

    /// Number of moments (circuit depth).
    #[inline]
    pub fn depth(&self) -> usize {
        self.moments.len()
    }

    /// Total number of operations.
    pub fn num_operations(&self) -> usize {
        self.moments.iter().map(Moment::len).sum()
    }

    /// Appends an operation with the given strategy.
    pub fn append(&mut self, op: Operation, strategy: InsertStrategy) {
        match strategy {
            InsertStrategy::NewMoment => {
                let mut m = Moment::new();
                m.push(op).expect("new moment cannot conflict");
                self.moments.push(m);
            }
            InsertStrategy::Inline => {
                let fits_last = self
                    .moments
                    .last()
                    .map(|m| m.is_free(op.support()))
                    .unwrap_or(false);
                if fits_last {
                    self.moments
                        .last_mut()
                        .unwrap()
                        .push(op)
                        .expect("checked free");
                } else {
                    let mut m = Moment::new();
                    m.push(op).expect("new moment cannot conflict");
                    self.moments.push(m);
                }
            }
            InsertStrategy::Earliest => {
                // Find the earliest moment index such that every later moment
                // (including it) is free of the op's qubits.
                let mut idx = self.moments.len();
                while idx > 0 && self.moments[idx - 1].is_free(op.support()) {
                    idx -= 1;
                }
                if idx == self.moments.len() {
                    let mut m = Moment::new();
                    m.push(op).expect("new moment cannot conflict");
                    self.moments.push(m);
                } else {
                    self.moments[idx].push(op).expect("checked free");
                }
            }
        }
    }

    /// Appends with the default (earliest) strategy.
    pub fn push(&mut self, op: Operation) {
        self.append(op, InsertStrategy::Earliest);
    }

    /// Appends a whole moment verbatim.
    pub fn push_moment(&mut self, moment: Moment) {
        self.moments.push(moment);
    }

    /// Appends all operations of `other`, moment-aligned (each of `other`'s
    /// moments becomes a new moment here).
    pub fn extend_circuit(&mut self, other: &Circuit) {
        for m in &other.moments {
            self.moments.push(m.clone());
        }
    }

    /// Iterates over all operations in time order.
    pub fn all_operations(&self) -> impl Iterator<Item = &Operation> {
        self.moments.iter().flat_map(|m| m.operations().iter())
    }

    /// Sorted list of all qubits used.
    pub fn qubits(&self) -> Vec<Qubit> {
        let mut qs: Vec<Qubit> = self
            .all_operations()
            .flat_map(|op| op.support().iter().copied())
            .collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }

    /// Number of qubits, assuming line qubits `q0..q{n-1}`:
    /// `max index + 1` (0 for an empty circuit).
    pub fn num_qubits(&self) -> usize {
        self.all_operations()
            .flat_map(|op| op.support())
            .map(|q| q.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// True when any operation is a measurement.
    pub fn has_measurements(&self) -> bool {
        self.all_operations().any(Operation::is_measurement)
    }

    /// True when any operation is a Kraus channel.
    pub fn has_channels(&self) -> bool {
        self.all_operations().any(Operation::is_channel)
    }

    /// True when every non-measurement operation is unitary
    /// (i.e. the circuit is noiseless).
    pub fn is_unitary_circuit(&self) -> bool {
        !self.has_channels()
    }

    /// True when every gate is Clifford (per
    /// [`crate::Gate::has_stabilizer_effect`]); measurements are allowed.
    pub fn is_clifford(&self) -> bool {
        self.all_operations().all(|op| match &op.kind {
            OpKind::Gate(g) => g.has_stabilizer_effect(),
            OpKind::Measure { .. } => true,
            OpKind::Channel(_) => false,
        })
    }

    /// True when measurements appear only in the final moment(s), i.e. no
    /// gate follows a measurement on any qubit.
    pub fn measurements_are_terminal(&self) -> bool {
        let mut measured: Vec<Qubit> = Vec::new();
        for op in self.all_operations() {
            if op.is_measurement() {
                measured.extend(op.support());
            } else if op.support().iter().any(|q| measured.contains(q)) {
                return false;
            }
        }
        true
    }

    /// True when the circuit carries unresolved symbolic parameters.
    pub fn is_parameterized(&self) -> bool {
        self.all_operations().any(Operation::is_parameterized)
    }

    /// Resolves symbolic parameters, preserving moment structure.
    pub fn resolve(&self, resolver: &ParamResolver) -> Circuit {
        Circuit {
            moments: self
                .moments
                .iter()
                .map(|m| {
                    Moment::from_ops(m.operations().iter().map(|op| op.resolve(resolver)))
                        .expect("resolution preserves disjointness")
                })
                .collect(),
        }
    }

    /// The inverse circuit (reversed moments, inverted gates). Fails on
    /// measurements or channels.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut moments = Vec::with_capacity(self.moments.len());
        for m in self.moments.iter().rev() {
            let ops: Result<Vec<Operation>, CircuitError> =
                m.operations().iter().map(Operation::inverse).collect();
            moments.push(Moment::from_ops(ops?)?);
        }
        Ok(Circuit { moments })
    }

    /// Strips all measurement operations (keeps moment structure, dropping
    /// emptied moments).
    pub fn without_measurements(&self) -> Circuit {
        let mut moments = Vec::new();
        for m in &self.moments {
            let ops: Vec<Operation> = m
                .operations()
                .iter()
                .filter(|op| !op.is_measurement())
                .cloned()
                .collect();
            if !ops.is_empty() {
                moments.push(Moment::from_ops(ops).expect("subset stays disjoint"));
            }
        }
        Circuit { moments }
    }

    /// The full `2^n x 2^n` unitary of the circuit over `num_qubits` qubits
    /// (must cover every used qubit). Exponential — verification only.
    pub fn unitary(&self, num_qubits: usize) -> Result<Matrix, CircuitError> {
        if num_qubits < self.num_qubits() {
            return Err(CircuitError::Invalid(format!(
                "circuit uses {} qubits, asked for unitary on {num_qubits}",
                self.num_qubits()
            )));
        }
        let dim = 1usize << num_qubits;
        let mut u = Matrix::identity(dim);
        for op in self.all_operations() {
            let g = op
                .as_gate()
                .ok_or_else(|| CircuitError::NonUnitaryOperation(format!("{op}")))?;
            let full = embed_unitary(&g.unitary()?, op.support(), num_qubits);
            u = full.matmul(&u);
        }
        Ok(u)
    }

    /// Counts operations satisfying a predicate.
    pub fn count_ops_where(&self, pred: impl Fn(&Operation) -> bool) -> usize {
        self.all_operations().filter(|op| pred(op)).count()
    }

    /// A structural 64-bit fingerprint of the circuit: moment structure,
    /// operation kinds, gate names and parameter bit patterns (symbolic
    /// parameters hash their symbol, scale, and offset), explicit-matrix
    /// entries, measurement keys, channel Kraus matrices, and qubit lists
    /// all contribute. Two circuits built the same way hash the same;
    /// any structural difference — including a parameter differing only
    /// in sign of zero — changes the hash with FxHash-level probability.
    ///
    /// This is the cache/batching key of the serving layer: seeded
    /// simulation results are a pure function of (circuit, backend,
    /// options, seed, repetitions), and this hash stands in for the
    /// circuit in that key. It is *not* semantic equivalence — a circuit
    /// and its gate-fused form hash differently.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = bgls_linalg::FxHasher::default();
        let hash_param = |h: &mut bgls_linalg::FxHasher, p: &crate::Param| match p {
            crate::Param::Const(v) => {
                h.write_u8(0);
                h.write_u64(v.to_bits());
            }
            crate::Param::Symbolic {
                symbol,
                scale,
                offset,
            } => {
                h.write_u8(1);
                h.write(symbol.as_bytes());
                h.write_u64(scale.to_bits());
                h.write_u64(offset.to_bits());
            }
        };
        let hash_matrix = |h: &mut bgls_linalg::FxHasher, m: &Matrix| {
            h.write_usize(m.rows());
            h.write_usize(m.cols());
            for c in m.data() {
                h.write_u64(c.re.to_bits());
                h.write_u64(c.im.to_bits());
            }
        };
        h.write_usize(self.moments.len());
        for moment in &self.moments {
            h.write_usize(moment.operations().len());
            for op in moment.operations() {
                match &op.kind {
                    OpKind::Gate(g) => {
                        h.write_u8(2);
                        h.write(g.name().as_bytes());
                        match g {
                            crate::Gate::Rx(p)
                            | crate::Gate::Ry(p)
                            | crate::Gate::Rz(p)
                            | crate::Gate::ZPow(p)
                            | crate::Gate::CPhase(p)
                            | crate::Gate::Rzz(p) => hash_param(&mut h, p),
                            crate::Gate::U1(m) | crate::Gate::U2(m) => hash_matrix(&mut h, m),
                            crate::Gate::U(m, arity) => {
                                h.write_usize(*arity);
                                hash_matrix(&mut h, m);
                            }
                            _ => {}
                        }
                    }
                    OpKind::Measure { key } => {
                        h.write_u8(3);
                        h.write(key.as_bytes());
                    }
                    OpKind::Channel(c) => {
                        h.write_u8(4);
                        h.write(c.name().as_bytes());
                        for k in c.kraus() {
                            hash_matrix(&mut h, k);
                        }
                    }
                }
                h.write_usize(op.qubits.len());
                for q in &op.qubits {
                    h.write_u32(q.0);
                }
            }
        }
        h.finish()
    }
}

/// Embeds a `2^k x 2^k` gate matrix acting on `qubits` (first listed = most
/// significant gate-index bit) into the full `2^n x 2^n` space.
///
/// Global bit convention: qubit `i` is bit `i` of the basis-state index
/// (little-endian; `q0` is the least significant bit of the state index).
pub fn embed_unitary(gate: &Matrix, qubits: &[Qubit], num_qubits: usize) -> Matrix {
    let k = qubits.len();
    debug_assert_eq!(gate.rows(), 1 << k);
    let dim = 1usize << num_qubits;
    let mut out = Matrix::zeros(dim, dim);
    // Iterate over full-space columns; for each, decompose into the gate-space
    // column and the untouched rest, then scatter the gate column.
    for col in 0..dim {
        // gate-space index of this column: bit j of the gate index comes from
        // qubit qubits[j], with qubits[0] the MOST significant gate bit.
        let mut gcol = 0usize;
        for (j, q) in qubits.iter().enumerate() {
            let bit = (col >> q.index()) & 1;
            gcol |= bit << (k - 1 - j);
        }
        for grow in 0..(1 << k) {
            let amp = gate[(grow, gcol)];
            if amp == C64::ZERO {
                continue;
            }
            // replace the qubit bits of `col` with those of `grow`
            let mut row = col;
            for (j, q) in qubits.iter().enumerate() {
                let bit = (grow >> (k - 1 - j)) & 1;
                row = (row & !(1 << q.index())) | (bit << q.index());
            }
            out[(row, col)] = amp;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::gate::Gate;
    use crate::param::Param;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn op(g: Gate, qs: &[u32]) -> Operation {
        Operation::gate(g, qs.iter().map(|&q| Qubit(q)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn earliest_strategy_packs_parallel_ops() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[1]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::H, &[2])); // slides back to moment 0
        assert_eq!(c.depth(), 2);
        assert_eq!(c.moments()[0].len(), 3);
        assert_eq!(c.num_operations(), 4);
    }

    #[test]
    fn new_moment_strategy_never_packs() {
        let mut c = Circuit::new();
        c.append(op(Gate::H, &[0]), InsertStrategy::NewMoment);
        c.append(op(Gate::H, &[1]), InsertStrategy::NewMoment);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn inline_strategy_packs_only_into_last() {
        let mut c = Circuit::new();
        c.append(op(Gate::H, &[0]), InsertStrategy::Inline);
        c.append(op(Gate::Cnot, &[0, 1]), InsertStrategy::Inline);
        c.append(op(Gate::H, &[2]), InsertStrategy::Inline); // fits last
        assert_eq!(c.depth(), 2);
        assert_eq!(c.moments()[1].len(), 2);
    }

    #[test]
    fn qubit_bookkeeping() {
        let mut c = Circuit::new();
        c.push(op(Gate::Cnot, &[0, 3]));
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.qubits(), vec![Qubit(0), Qubit(3)]);
    }

    #[test]
    fn ghz_circuit_unitary_creates_superposition() {
        // H(0), CNOT(0->1): |00> -> (|00> + |11>)/sqrt(2)
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        let u = c.unitary(2).unwrap();
        // column 0 = image of |00>; state index bit0 = q0
        assert!(u[(0, 0)].approx_eq(C64::real(FRAC_1_SQRT_2), 1e-12));
        assert!(u[(3, 0)].approx_eq(C64::real(FRAC_1_SQRT_2), 1e-12));
        assert!(u[(1, 0)].approx_eq(C64::ZERO, 1e-12));
        assert!(u[(2, 0)].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn embed_respects_qubit_order() {
        // CNOT with control q1, target q0.
        let cx = Gate::Cnot.unitary().unwrap();
        let full = embed_unitary(&cx, &[Qubit(1), Qubit(0)], 2);
        // |q1=1, q0=0> = index 2 -> flips q0 -> index 3
        assert_eq!(full[(3, 2)], C64::ONE);
        // |q1=0, q0=1> = index 1 unchanged
        assert_eq!(full[(1, 1)], C64::ONE);
    }

    #[test]
    fn embed_single_qubit_on_three_qubit_space() {
        let x = Gate::X.unitary().unwrap();
        let full = embed_unitary(&x, &[Qubit(1)], 3);
        // flips bit 1: |010> (2) -> |000> (0)
        assert_eq!(full[(0, 2)], C64::ONE);
        assert_eq!(full[(5, 7)], C64::ONE);
        assert!(full.is_unitary(1e-12));
    }

    #[test]
    fn circuit_unitary_is_unitary_matrix() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::T, &[1]));
        c.push(op(Gate::Cnot, &[1, 0]));
        c.push(op(Gate::Swap, &[0, 2]));
        let u = c.unitary(3).unwrap();
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn inverse_circuit_cancels() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::S, &[1]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::Rz(0.37.into()), &[0]));
        let inv = c.inverse().unwrap();
        let u = c.unitary(2).unwrap();
        let v = inv.unitary(2).unwrap();
        assert!(u.matmul(&v).approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn unitary_of_measurement_circuit_fails() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(Operation::measure(vec![Qubit(0)], "z").unwrap());
        assert!(matches!(
            c.unitary(1),
            Err(CircuitError::NonUnitaryOperation(_))
        ));
    }

    #[test]
    fn measurement_terminality() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        assert!(c.measurements_are_terminal());
        c.push(op(Gate::X, &[0]));
        assert!(!c.measurements_are_terminal());
    }

    #[test]
    fn clifford_detection_on_circuits() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        assert!(c.is_clifford());
        c.push(op(Gate::T, &[1]));
        assert!(!c.is_clifford());
    }

    #[test]
    fn resolve_whole_circuit() {
        let mut c = Circuit::new();
        c.push(op(Gate::Rz(Param::symbol("g")), &[0]));
        c.push(op(Gate::Rx(Param::symbol("b")), &[1]));
        assert!(c.is_parameterized());
        let r = ParamResolver::from_pairs([("g", 0.1), ("b", 0.2)]);
        let rc = c.resolve(&r);
        assert!(!rc.is_parameterized());
        assert_eq!(rc.depth(), c.depth());
    }

    #[test]
    fn without_measurements_drops_empty_moments() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.append(
            Operation::measure(vec![Qubit(0)], "m").unwrap(),
            InsertStrategy::NewMoment,
        );
        let stripped = c.without_measurements();
        assert_eq!(stripped.depth(), 1);
        assert!(!stripped.has_measurements());
    }

    #[test]
    fn channel_detection() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        assert!(c.is_unitary_circuit());
        c.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap());
        assert!(c.has_channels());
        assert!(!c.is_unitary_circuit());
    }

    #[test]
    fn structural_hash_is_stable_and_discriminating() {
        let build = |theta: f64, key: &str| {
            let mut c = Circuit::new();
            c.push(op(Gate::H, &[0]));
            c.push(op(Gate::Cnot, &[0, 1]));
            c.push(op(Gate::Rz(Param::from(theta)), &[1]));
            c.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap());
            c.push(Operation::measure(vec![Qubit(0), Qubit(1)], key).unwrap());
            c
        };
        // same construction -> same hash
        assert_eq!(
            build(0.25, "z").structural_hash(),
            build(0.25, "z").structural_hash()
        );
        // any structural difference -> different hash
        let base = build(0.25, "z").structural_hash();
        assert_ne!(base, build(0.26, "z").structural_hash(), "parameter");
        assert_ne!(base, build(0.25, "m").structural_hash(), "measure key");
        let mut reordered = Circuit::new();
        reordered.push(op(Gate::Cnot, &[0, 1]));
        reordered.push(op(Gate::H, &[0]));
        assert_ne!(
            reordered.structural_hash(),
            {
                let mut c = Circuit::new();
                c.push(op(Gate::H, &[0]));
                c.push(op(Gate::Cnot, &[0, 1]));
                c
            }
            .structural_hash(),
            "operation order"
        );
        // qubit relabeling changes the hash
        assert_ne!(
            op_circuit(&[op(Gate::X, &[0])]).structural_hash(),
            op_circuit(&[op(Gate::X, &[1])]).structural_hash()
        );
        // symbolic vs resolved parameters differ; resolving is hashable
        let mut sym = Circuit::new();
        sym.push(op(Gate::Rz(Param::symbol("t")), &[0]));
        let resolved = sym.resolve(ParamResolver::new().bind("t", 0.25));
        assert_ne!(sym.structural_hash(), resolved.structural_hash());
    }

    fn op_circuit(ops: &[Operation]) -> Circuit {
        let mut c = Circuit::new();
        for o in ops {
            c.push(o.clone());
        }
        c
    }
}

//! The gate set: named gates, rotations, and arbitrary unitaries.
//!
//! Matrix convention (identical to Cirq): for a gate applied to qubits
//! `(a, b, ...)` in the listed order, the first listed qubit is the most
//! significant bit of the matrix index. `CNOT` applied to `(control,
//! target)` is therefore `[[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]]`.

use crate::error::CircuitError;
use crate::param::{Param, ParamResolver};
use bgls_linalg::{Matrix, C64};
use std::f64::consts::{FRAC_1_SQRT_2, PI};
use std::sync::Arc;

/// A quantum gate. Fixed-arity named gates, parameterized rotations, and
/// arbitrary unitary matrices.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    // --- single qubit, Clifford ---
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate.
    Sdg,
    /// Square root of X.
    SqrtX,
    /// Inverse square root of X.
    SqrtXDag,
    // --- single qubit, non-Clifford ---
    /// T = diag(1, e^{i pi/4}).
    T,
    /// Inverse T.
    Tdg,
    /// Rotation about X: `exp(-i X theta / 2)`.
    Rx(Param),
    /// Rotation about Y: `exp(-i Y theta / 2)`.
    Ry(Param),
    /// Rotation about Z: `exp(-i Z theta / 2)` = the paper's `R(theta)`.
    Rz(Param),
    /// Cirq-style `ZPowGate`: diag(1, e^{i pi t}) for exponent `t`.
    ZPow(Param),
    /// Arbitrary single-qubit unitary.
    U1(Arc<Matrix>),
    // --- two qubit ---
    /// Controlled-X (first qubit controls).
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Swap.
    Swap,
    /// iSWAP.
    ISwap,
    /// Controlled phase: diag(1, 1, 1, e^{i theta}).
    CPhase(Param),
    /// Two-qubit ZZ rotation `exp(-i theta/2 Z(x)Z)` (the QAOA interaction).
    Rzz(Param),
    /// Arbitrary two-qubit unitary.
    U2(Arc<Matrix>),
    // --- three qubit ---
    /// Toffoli (first two qubits control).
    Ccx,
    /// Doubly-controlled Z.
    Ccz,
    /// Controlled swap (Fredkin; first qubit controls).
    Cswap,
    /// Arbitrary k-qubit unitary with explicit arity.
    U(Arc<Matrix>, usize),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | SqrtX | SqrtXDag | T | Tdg | Rx(_) | Ry(_) | Rz(_)
            | ZPow(_) | U1(_) => 1,
            Cnot | Cz | Swap | ISwap | CPhase(_) | Rzz(_) | U2(_) => 2,
            Ccx | Ccz | Cswap => 3,
            U(_, k) => *k,
        }
    }

    /// Short display name (lowercase, QASM-flavoured).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            SqrtX => "sx",
            SqrtXDag => "sxdg",
            T => "t",
            Tdg => "tdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            ZPow(_) => "zpow",
            U1(_) => "u1q",
            Cnot => "cx",
            Cz => "cz",
            Swap => "swap",
            ISwap => "iswap",
            CPhase(_) => "cp",
            Rzz(_) => "rzz",
            U2(_) => "u2q",
            Ccx => "ccx",
            Ccz => "ccz",
            Cswap => "cswap",
            U(..) => "ukq",
        }
    }

    /// True when the gate still carries an unresolved symbolic parameter.
    pub fn is_parameterized(&self) -> bool {
        use Gate::*;
        match self {
            Rx(p) | Ry(p) | Rz(p) | ZPow(p) | CPhase(p) | Rzz(p) => p.is_symbolic(),
            _ => false,
        }
    }

    /// Resolves symbolic parameters against `resolver`.
    pub fn resolve(&self, resolver: &ParamResolver) -> Gate {
        use Gate::*;
        match self {
            Rx(p) => Rx(p.resolve(resolver)),
            Ry(p) => Ry(p.resolve(resolver)),
            Rz(p) => Rz(p.resolve(resolver)),
            ZPow(p) => ZPow(p.resolve(resolver)),
            CPhase(p) => CPhase(p.resolve(resolver)),
            Rzz(p) => Rzz(p.resolve(resolver)),
            g => g.clone(),
        }
    }

    /// The gate's unitary matrix (dimension `2^arity`).
    ///
    /// Fails with [`CircuitError::UnresolvedParameter`] when a symbolic
    /// parameter has not been bound.
    pub fn unitary(&self) -> Result<Matrix, CircuitError> {
        use Gate::*;
        let c = C64::real;
        Ok(match self {
            I => Matrix::identity(2),
            X => Matrix::from_vec(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]),
            Y => Matrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO]),
            Z => Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE]),
            H => Matrix::from_vec(
                2,
                2,
                vec![
                    c(FRAC_1_SQRT_2),
                    c(FRAC_1_SQRT_2),
                    c(FRAC_1_SQRT_2),
                    c(-FRAC_1_SQRT_2),
                ],
            ),
            S => Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, C64::I]),
            Sdg => Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, -C64::I]),
            SqrtX => {
                // 1/2 [[1+i, 1-i], [1-i, 1+i]]
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                Matrix::from_vec(2, 2, vec![p, m, m, p])
            }
            SqrtXDag => {
                let p = C64::new(0.5, -0.5);
                let m = C64::new(0.5, 0.5);
                Matrix::from_vec(2, 2, vec![p, m, m, p])
            }
            T => Matrix::from_vec(
                2,
                2,
                vec![C64::ONE, C64::ZERO, C64::ZERO, C64::cis(PI / 4.0)],
            ),
            Tdg => Matrix::from_vec(
                2,
                2,
                vec![C64::ONE, C64::ZERO, C64::ZERO, C64::cis(-PI / 4.0)],
            ),
            Rx(p) => {
                let t = p.value()? / 2.0;
                Matrix::from_vec(
                    2,
                    2,
                    vec![
                        c(t.cos()),
                        C64::new(0.0, -t.sin()),
                        C64::new(0.0, -t.sin()),
                        c(t.cos()),
                    ],
                )
            }
            Ry(p) => {
                let t = p.value()? / 2.0;
                Matrix::from_vec(2, 2, vec![c(t.cos()), c(-t.sin()), c(t.sin()), c(t.cos())])
            }
            Rz(p) => {
                let t = p.value()? / 2.0;
                Matrix::from_vec(2, 2, vec![C64::cis(-t), C64::ZERO, C64::ZERO, C64::cis(t)])
            }
            ZPow(p) => {
                let t = p.value()?;
                Matrix::from_vec(2, 2, vec![C64::ONE, C64::ZERO, C64::ZERO, C64::cis(PI * t)])
            }
            U1(m) => (**m).clone(),
            Cnot => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(1, 1)] = C64::ONE;
                m[(2, 3)] = C64::ONE;
                m[(3, 2)] = C64::ONE;
                m
            }
            Cz => {
                let mut m = Matrix::identity(4);
                m[(3, 3)] = -C64::ONE;
                m
            }
            Swap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(1, 2)] = C64::ONE;
                m[(2, 1)] = C64::ONE;
                m[(3, 3)] = C64::ONE;
                m
            }
            ISwap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(1, 2)] = C64::I;
                m[(2, 1)] = C64::I;
                m[(3, 3)] = C64::ONE;
                m
            }
            CPhase(p) => {
                let t = p.value()?;
                let mut m = Matrix::identity(4);
                m[(3, 3)] = C64::cis(t);
                m
            }
            Rzz(p) => {
                let t = p.value()? / 2.0;
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::cis(-t);
                m[(1, 1)] = C64::cis(t);
                m[(2, 2)] = C64::cis(t);
                m[(3, 3)] = C64::cis(-t);
                m
            }
            U2(m) => (**m).clone(),
            Ccx => {
                let mut m = Matrix::identity(8);
                m[(6, 6)] = C64::ZERO;
                m[(7, 7)] = C64::ZERO;
                m[(6, 7)] = C64::ONE;
                m[(7, 6)] = C64::ONE;
                m
            }
            Ccz => {
                let mut m = Matrix::identity(8);
                m[(7, 7)] = -C64::ONE;
                m
            }
            Cswap => {
                let mut m = Matrix::identity(8);
                m[(5, 5)] = C64::ZERO;
                m[(6, 6)] = C64::ZERO;
                m[(5, 6)] = C64::ONE;
                m[(6, 5)] = C64::ONE;
                m
            }
            U(m, _) => (**m).clone(),
        })
    }

    /// The inverse gate, when expressible.
    ///
    /// Fails only for unresolved parameters (never for structural reasons —
    /// every gate here is unitary).
    pub fn inverse(&self) -> Result<Gate, CircuitError> {
        use Gate::*;
        Ok(match self {
            I | X | Y | Z | H | Cnot | Cz | Swap | Ccx | Ccz | Cswap => self.clone(),
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            SqrtX => SqrtXDag,
            SqrtXDag => SqrtX,
            Rx(p) => Rx(p.scaled(-1.0)),
            Ry(p) => Ry(p.scaled(-1.0)),
            Rz(p) => Rz(p.scaled(-1.0)),
            ZPow(p) => ZPow(p.scaled(-1.0)),
            CPhase(p) => CPhase(p.scaled(-1.0)),
            Rzz(p) => Rzz(p.scaled(-1.0)),
            ISwap => U2(Arc::new(ISwap.unitary()?.dagger())),
            U1(m) => U1(Arc::new(m.dagger())),
            U2(m) => U2(Arc::new(m.dagger())),
            U(m, k) => U(Arc::new(m.dagger()), *k),
        })
    }

    /// True when the gate is exactly a Clifford operation — the
    /// `cirq.has_stabilizer_effect` substitute used by the near-Clifford
    /// channel (paper Sec. 4.2.2).
    ///
    /// Rotation gates qualify when their (resolved) angle lands on a
    /// Clifford multiple within `1e-12`: `Rz`/`Rx`/`Ry` at multiples of
    /// pi/2, `ZPow` at multiples of 0.5, `CPhase` at multiples of pi.
    /// Symbolic parameters never qualify.
    pub fn has_stabilizer_effect(&self) -> bool {
        use Gate::*;
        const TOL: f64 = 1e-12;
        let on_grid = |v: f64, step: f64| -> bool {
            let r = (v / step).round();
            (v - r * step).abs() <= TOL
        };
        match self {
            I | X | Y | Z | H | S | Sdg | SqrtX | SqrtXDag | Cnot | Cz | Swap | ISwap => true,
            T | Tdg => false,
            Rx(p) | Ry(p) | Rz(p) => p.value().map(|v| on_grid(v, PI / 2.0)).unwrap_or(false),
            ZPow(p) => p.value().map(|v| on_grid(v, 0.5)).unwrap_or(false),
            CPhase(p) => p.value().map(|v| on_grid(v, PI)).unwrap_or(false),
            Rzz(p) => p.value().map(|v| on_grid(v, PI / 2.0)).unwrap_or(false),
            Ccx | Ccz | Cswap => false,
            U1(_) | U2(_) | U(..) => false,
        }
    }

    /// True for gates whose matrix is diagonal in the computational basis.
    /// The lazy tensor-network state uses this to insert cheap bonds, and
    /// the sampler's `skip_diagonal_updates` option elides the bitstring
    /// update. Named diagonal gates are recognized syntactically;
    /// explicit-matrix gates (`U1`/`U2`/`U`, including the output of
    /// [`crate::fuse`] on a run of diagonal gates) are checked entry-wise,
    /// so fused diagonal runs keep their diagonal flag.
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        match self {
            I | Z | S | Sdg | T | Tdg | Rz(_) | ZPow(_) | Cz | CPhase(_) | Rzz(_) | Ccz => true,
            U1(m) | U2(m) => m.is_diagonal(1e-12),
            U(m, _) => m.is_diagonal(1e-12),
            _ => false,
        }
    }

    /// Validates and wraps a custom matrix as a gate of the right arity.
    pub fn from_matrix(m: Matrix, arity: usize) -> Result<Gate, CircuitError> {
        let dim = 1usize << arity;
        if m.rows() != dim || m.cols() != dim {
            return Err(CircuitError::Invalid(format!(
                "matrix is {}x{}, expected {}x{} for {} qubits",
                m.rows(),
                m.cols(),
                dim,
                dim,
                arity
            )));
        }
        if !m.is_unitary(1e-9) {
            return Err(CircuitError::NotUnitary("custom gate".into()));
        }
        let m = Arc::new(m);
        Ok(match arity {
            1 => Gate::U1(m),
            2 => Gate::U2(m),
            k => Gate::U(m, k),
        })
    }
}

/// The standard Clifford generators used by the paper's random Clifford
/// circuits (H, S, CNOT).
pub const CLIFFORD_GENERATORS: [Gate; 3] = [Gate::H, Gate::S, Gate::Cnot];

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_unitary(g: &Gate) {
        let u = g.unitary().unwrap();
        assert!(u.is_unitary(1e-10), "{} not unitary", g.name());
        assert_eq!(u.rows(), 1 << g.arity());
    }

    #[test]
    fn all_fixed_gates_are_unitary() {
        use Gate::*;
        for g in [
            I, X, Y, Z, H, S, Sdg, SqrtX, SqrtXDag, T, Tdg, Cnot, Cz, Swap, ISwap, Ccx, Ccz, Cswap,
        ] {
            assert_unitary(&g);
        }
    }

    #[test]
    fn rotations_are_unitary() {
        for theta in [0.0, 0.3, PI / 2.0, PI, 4.2] {
            for g in [
                Gate::Rx(theta.into()),
                Gate::Ry(theta.into()),
                Gate::Rz(theta.into()),
                Gate::ZPow((theta / PI).into()),
                Gate::CPhase(theta.into()),
                Gate::Rzz(theta.into()),
            ] {
                assert_unitary(&g);
            }
        }
    }

    #[test]
    fn t_squared_is_s() {
        let t = Gate::T.unitary().unwrap();
        let s = Gate::S.unitary().unwrap();
        assert!(t.matmul(&t).approx_eq(&s, 1e-12));
    }

    #[test]
    fn sqrtx_squared_is_x() {
        let sx = Gate::SqrtX.unitary().unwrap();
        let x = Gate::X.unitary().unwrap();
        assert!(sx.matmul(&sx).approx_eq(&x, 1e-12));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Gate::H.unitary().unwrap();
        let x = Gate::X.unitary().unwrap();
        let z = Gate::Z.unitary().unwrap();
        assert!(h.matmul(&x).matmul(&h).approx_eq(&z, 1e-12));
    }

    #[test]
    fn zpow_quarter_is_t_and_rz_matches_up_to_phase() {
        let zp = Gate::ZPow(0.25.into()).unitary().unwrap();
        let t = Gate::T.unitary().unwrap();
        assert!(zp.approx_eq(&t, 1e-12));
        // Rz(pi/4) = e^{-i pi/8} T
        let rz = Gate::Rz((PI / 4.0).into()).unitary().unwrap();
        let phased = t.scale(C64::cis(-PI / 8.0));
        assert!(rz.approx_eq(&phased, 1e-12));
    }

    #[test]
    fn inverses_cancel() {
        use Gate::*;
        let gates = [
            X,
            H,
            S,
            T,
            SqrtX,
            Rx(0.7.into()),
            Rz(1.3.into()),
            ZPow(0.4.into()),
            ISwap,
            CPhase(0.9.into()),
            Rzz(0.35.into()),
            Ccx,
        ];
        for g in gates {
            let u = g.unitary().unwrap();
            let v = g.inverse().unwrap().unitary().unwrap();
            let id = Matrix::identity(u.rows());
            assert!(u.matmul(&v).approx_eq(&id, 1e-10), "{} inverse", g.name());
        }
    }

    #[test]
    fn stabilizer_effect_detection() {
        assert!(Gate::H.has_stabilizer_effect());
        assert!(Gate::S.has_stabilizer_effect());
        assert!(Gate::Cnot.has_stabilizer_effect());
        assert!(!Gate::T.has_stabilizer_effect());
        assert!(!Gate::Ccx.has_stabilizer_effect());
        // Rz at Clifford angles
        assert!(Gate::Rz((PI / 2.0).into()).has_stabilizer_effect());
        assert!(Gate::Rz(PI.into()).has_stabilizer_effect());
        assert!(Gate::Rz(0.0.into()).has_stabilizer_effect());
        assert!(!Gate::Rz((PI / 4.0).into()).has_stabilizer_effect());
        // ZPow at half-integer exponents
        assert!(Gate::ZPow(0.5.into()).has_stabilizer_effect());
        assert!(Gate::ZPow(1.0.into()).has_stabilizer_effect());
        assert!(!Gate::ZPow(0.25.into()).has_stabilizer_effect());
        // symbolic parameters never qualify
        assert!(!Gate::Rz(Param::symbol("t")).has_stabilizer_effect());
    }

    #[test]
    fn diagonal_detection() {
        assert!(Gate::Cz.is_diagonal());
        assert!(Gate::Rz(0.3.into()).is_diagonal());
        assert!(!Gate::Cnot.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        // explicit matrices are checked entry-wise
        let tt = Gate::T
            .unitary()
            .unwrap()
            .matmul(&Gate::S.unitary().unwrap());
        assert!(Gate::U1(Arc::new(tt)).is_diagonal());
        assert!(!Gate::U1(Arc::new(Gate::H.unitary().unwrap())).is_diagonal());
        assert!(Gate::U2(Arc::new(Gate::Cz.unitary().unwrap())).is_diagonal());
        assert!(Gate::U(Arc::new(Gate::Ccz.unitary().unwrap()), 3).is_diagonal());
        // verify against the matrix for a sample
        let u = Gate::Rzz(0.7.into()).unitary().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(u[(i, j)], C64::ZERO);
                }
            }
        }
    }

    #[test]
    fn parameter_resolution_flows_through() {
        let g = Gate::Rz(Param::symbol("theta"));
        assert!(g.is_parameterized());
        assert!(matches!(
            g.unitary(),
            Err(CircuitError::UnresolvedParameter(_))
        ));
        let r = ParamResolver::from_pairs([("theta", PI)]);
        let resolved = g.resolve(&r);
        assert!(!resolved.is_parameterized());
        assert_unitary(&resolved);
    }

    #[test]
    fn from_matrix_validates() {
        // non-unitary rejected
        let bad = Matrix::zeros(2, 2);
        assert!(matches!(
            Gate::from_matrix(bad, 1),
            Err(CircuitError::NotUnitary(_))
        ));
        // wrong size rejected
        let id4 = Matrix::identity(4);
        assert!(Gate::from_matrix(id4.clone(), 1).is_err());
        // good matrix accepted with right variant
        assert!(matches!(Gate::from_matrix(id4, 2), Ok(Gate::U2(_))));
    }

    #[test]
    fn cnot_matrix_convention_first_qubit_controls() {
        let u = Gate::Cnot.unitary().unwrap();
        // |10> -> |11>: input index 2, output index 3
        assert_eq!(u[(3, 2)], C64::ONE);
        assert_eq!(u[(2, 2)], C64::ZERO);
        // |01> fixed
        assert_eq!(u[(1, 1)], C64::ONE);
    }

    #[test]
    fn rzz_is_symmetric_and_clifford_only_at_half_pi_grid() {
        let u = Gate::Rzz(0.4.into()).unitary().unwrap();
        assert!(u[(0, 0)].approx_eq(u[(3, 3)], 1e-15));
        assert!(u[(1, 1)].approx_eq(u[(2, 2)], 1e-15));
        assert!(Gate::Rzz((PI / 2.0).into()).has_stabilizer_effect());
        assert!(!Gate::Rzz(0.4.into()).has_stabilizer_effect());
    }
}

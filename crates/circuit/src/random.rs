//! Random circuit generation — the `bgls.generate_random_circuit`
//! substitute (paper Sec. 4.1.3), with a simple gate-set specification.

use crate::circuit::{Circuit, InsertStrategy};
use crate::gate::Gate;
use crate::moment::Moment;
use crate::op::Operation;
use crate::qubit::Qubit;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`generate_random_circuit`].
#[derive(Clone, Debug)]
pub struct RandomCircuitParams {
    /// Number of line qubits.
    pub qubits: usize,
    /// Number of moments (layers).
    pub moments: usize,
    /// Probability that a free qubit slot receives an operation in each
    /// moment (Cirq's `op_density`).
    pub op_density: f64,
    /// Gates to draw from, uniformly among those whose arity still fits.
    pub gate_set: Vec<Gate>,
}

impl RandomCircuitParams {
    /// Random circuits over the paper's Clifford generator set
    /// (H, S, CNOT) with full op density.
    pub fn clifford(qubits: usize, moments: usize) -> Self {
        RandomCircuitParams {
            qubits,
            moments,
            op_density: 1.0,
            gate_set: vec![Gate::H, Gate::S, Gate::Cnot],
        }
    }

    /// Random Clifford+T circuits (the near-Clifford workload of Sec. 4.2).
    pub fn clifford_t(qubits: usize, moments: usize) -> Self {
        RandomCircuitParams {
            qubits,
            moments,
            op_density: 1.0,
            gate_set: vec![Gate::H, Gate::S, Gate::Cnot, Gate::T],
        }
    }
}

/// Generates a random circuit: per moment, qubits are shuffled and greedily
/// packed with gates drawn from the gate set.
pub fn generate_random_circuit(params: &RandomCircuitParams, rng: &mut impl Rng) -> Circuit {
    assert!(params.qubits > 0, "need at least one qubit");
    assert!(
        (0.0..=1.0).contains(&params.op_density),
        "op_density must be in [0, 1]"
    );
    assert!(!params.gate_set.is_empty(), "gate set must not be empty");
    let min_arity = params
        .gate_set
        .iter()
        .map(Gate::arity)
        .min()
        .expect("non-empty gate set");
    assert!(
        min_arity <= params.qubits,
        "no gate in the set fits on {} qubits",
        params.qubits
    );

    let mut circuit = Circuit::new();
    let mut pool: Vec<u32> = (0..params.qubits as u32).collect();
    for _ in 0..params.moments {
        pool.shuffle(rng);
        let mut moment = Moment::new();
        let mut cursor = 0usize;
        while cursor < pool.len() {
            let remaining = pool.len() - cursor;
            if remaining < min_arity {
                break;
            }
            if !rng.gen_bool(params.op_density) {
                cursor += 1;
                continue;
            }
            let fitting: Vec<&Gate> = params
                .gate_set
                .iter()
                .filter(|g| g.arity() <= remaining)
                .collect();
            let gate = (*fitting.choose(rng).expect("at least one gate fits")).clone();
            let arity = gate.arity();
            let qubits: Vec<Qubit> = pool[cursor..cursor + arity]
                .iter()
                .map(|&q| Qubit(q))
                .collect();
            cursor += arity;
            moment
                .push(Operation::gate(gate, qubits).expect("pool qubits are distinct"))
                .expect("pool slices are disjoint");
        }
        if !moment.is_empty() {
            circuit.push_moment(moment);
        }
    }
    circuit
}

/// Replaces `count` randomly chosen single-qubit gate operations with
/// `replacement` (applied to the same qubit). Used to inject T gates into
/// Clifford circuits (Fig. 5) and to swap T for S or R(theta) (Fig. 4).
///
/// Returns the modified circuit and the number of substitutions actually
/// performed (less than `count` when the circuit has too few 1q gates).
pub fn replace_single_qubit_gates(
    circuit: &Circuit,
    replacement: &Gate,
    count: usize,
    rng: &mut impl Rng,
) -> (Circuit, usize) {
    assert_eq!(replacement.arity(), 1, "replacement must be single-qubit");
    // Collect flat indices of single-qubit gate operations.
    let mut positions: Vec<usize> = Vec::new();
    for (i, op) in circuit.all_operations().enumerate() {
        if op.is_unitary() && op.support().len() == 1 {
            positions.push(i);
        }
    }
    positions.shuffle(rng);
    let n = count.min(positions.len());
    let chosen: std::collections::HashSet<usize> = positions[..n].iter().copied().collect();

    let mut out = Circuit::new();
    for (i, op) in circuit.all_operations().enumerate() {
        if chosen.contains(&i) {
            out.append(
                Operation::gate(replacement.clone(), op.support().to_vec())
                    .expect("same qubit, arity 1"),
                InsertStrategy::Earliest,
            );
        } else {
            out.append(op.clone(), InsertStrategy::Earliest);
        }
    }
    (out, n)
}

/// Replaces every occurrence of gate `from` with `to` (matching on the gate
/// value, e.g. every `T` becomes `S`). Arities must match.
pub fn substitute_gate(circuit: &Circuit, from: &Gate, to: &Gate) -> Circuit {
    assert_eq!(from.arity(), to.arity(), "substitute_gate arity mismatch");
    let mut out = Circuit::new();
    for m in circuit.moments() {
        let ops = m.operations().iter().map(|op| {
            if op.as_gate() == Some(from) {
                Operation::gate(to.clone(), op.support().to_vec()).expect("same arity")
            } else {
                op.clone()
            }
        });
        out.push_moment(Moment::from_ops(ops).expect("structure preserved"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clifford_circuit_uses_only_generators() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = generate_random_circuit(&RandomCircuitParams::clifford(8, 20), &mut rng);
        assert!(c.depth() > 0 && c.depth() <= 20);
        assert!(c.is_clifford());
        assert!(c.num_qubits() <= 8);
        for op in c.all_operations() {
            let g = op.as_gate().unwrap();
            assert!(matches!(g, Gate::H | Gate::S | Gate::Cnot));
        }
    }

    #[test]
    fn full_density_packs_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = generate_random_circuit(&RandomCircuitParams::clifford(10, 5), &mut rng);
        // with density 1 and 1q gates available, every moment covers >= 9 qubits
        for m in c.moments() {
            let used: usize = m.operations().iter().map(|o| o.support().len()).sum();
            assert!(used >= 9, "moment only uses {used} qubits");
        }
    }

    #[test]
    fn zero_density_gives_empty_circuit() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = RandomCircuitParams {
            qubits: 4,
            moments: 10,
            op_density: 0.0,
            gate_set: vec![Gate::H],
        };
        let c = generate_random_circuit(&params, &mut rng);
        assert_eq!(c.num_operations(), 0);
    }

    #[test]
    fn determinism_with_seed() {
        let params = RandomCircuitParams::clifford_t(6, 15);
        let c1 = generate_random_circuit(&params, &mut StdRng::seed_from_u64(42));
        let c2 = generate_random_circuit(&params, &mut StdRng::seed_from_u64(42));
        assert_eq!(c1, c2);
    }

    #[test]
    fn replace_injects_exactly_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = generate_random_circuit(&RandomCircuitParams::clifford(8, 30), &mut rng);
        let before_t = c.count_ops_where(|op| op.as_gate() == Some(&Gate::T));
        assert_eq!(before_t, 0);
        let (c2, n) = replace_single_qubit_gates(&c, &Gate::T, 5, &mut rng);
        assert_eq!(n, 5);
        let after_t = c2.count_ops_where(|op| op.as_gate() == Some(&Gate::T));
        assert_eq!(after_t, 5);
        assert_eq!(c.num_operations(), c2.num_operations());
    }

    #[test]
    fn replace_caps_at_available() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        let (c2, n) = replace_single_qubit_gates(&c, &Gate::T, 10, &mut rng);
        assert_eq!(n, 1); // only one 1q gate existed
        assert_eq!(c2.count_ops_where(|op| op.as_gate() == Some(&Gate::T)), 1);
    }

    #[test]
    fn substitute_t_with_s() {
        let mut rng = StdRng::seed_from_u64(6);
        let c = generate_random_circuit(&RandomCircuitParams::clifford_t(6, 20), &mut rng);
        let subbed = substitute_gate(&c, &Gate::T, &Gate::S);
        assert_eq!(
            subbed.count_ops_where(|op| op.as_gate() == Some(&Gate::T)),
            0
        );
        assert!(subbed.is_clifford());
        assert_eq!(subbed.depth(), c.depth());
    }
}

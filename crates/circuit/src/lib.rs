//! # bgls-circuit
//!
//! Quantum circuit intermediate representation — the Cirq substitute for the
//! BGLS reproduction. Provides:
//!
//! * [`Qubit`], [`Gate`], [`Operation`], [`Moment`], [`Circuit`] — the core
//!   moment-based IR with Cirq's matrix conventions;
//! * [`Param`] / [`ParamResolver`] — symbolic parameters for sweeps
//!   (paper Sec. 4.4);
//! * [`Channel`] — Kraus channels for noisy simulation via trajectories
//!   (Sec. 3.2.1);
//! * [`PauliOp`] / [`PauliString`] / [`PauliSum`] — sparse Pauli
//!   observables with phase-tracked algebra, qubit-wise-commuting
//!   grouping, and basis-rotation emission (the observable side of the
//!   expectation engine in `bgls-core`);
//! * [`fuse`] / [`optimize_for_bgls`] — single-qubit-run merging
//!   (Sec. 3.2.2), the pass behind the simulator's `fuse_gates` knob;
//! * [`generate_random_circuit`] — random-circuit workloads (Sec. 4.1.3);
//! * [`to_qasm`] / [`from_qasm`] — OpenQASM 2.0 interop (Sec. 3.2.4).

#![warn(missing_docs)]

mod channel;
mod circuit;
mod decompose;
mod error;
mod gate;
mod moment;
mod op;
mod optimize;
mod param;
mod pauli;
mod qasm;
mod qubit;
mod random;
mod transform;

pub use channel::Channel;
pub use circuit::{embed_unitary, Circuit, InsertStrategy};
pub use decompose::{
    decompose_ccx, decompose_ccz, decompose_cswap, decompose_op, decompose_three_qubit_gates,
};
pub use error::CircuitError;
pub use gate::{Gate, CLIFFORD_GENERATORS};
pub use moment::Moment;
pub use op::{OpKind, Operation};
pub use optimize::{
    cancel_inverse_pairs, extract_diagonal_runs, fuse_two_qubit_runs, lightcone_prune,
    lightcone_prune_for, optimize, pipeline_for, reorder_commuting_gates, OptimizeConfig,
    PassPipeline, PassStats, RewriteStats,
};
pub use param::{Param, ParamResolver};
pub use pauli::{parity_sign_masked, score_parity_terms, PauliOp, PauliString, PauliSum};
pub use qasm::{from_qasm, observable_pragmas, to_qasm, to_qasm_with_observables};
pub use qubit::Qubit;
pub use random::{
    generate_random_circuit, replace_single_qubit_gates, substitute_gate, RandomCircuitParams,
};
pub use transform::{drop_identities, fuse, merge_single_qubit_gates, optimize_for_bgls};

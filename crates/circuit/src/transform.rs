//! Circuit transformers, most importantly the `bgls.optimize_for_bgls`
//! substitute (paper Sec. 3.2.2): merging runs of single-qubit gates so the
//! sampler updates its bitstring once per merged gate instead of once per
//! primitive gate, a documented 1.5-2x runtime win.
//!
//! The composed pass behind `SimulatorOptions::fuse_gates` is [`fuse`]
//! ([`merge_single_qubit_gates`] followed by [`drop_identities`]); the
//! pieces are public so callers can run them independently. Every pass
//! preserves the circuit's unitary action exactly — matrices are
//! multiplied, never approximated — so sampling *distributions* are
//! unchanged even though the gate sequence (and hence seeded samples)
//! differs.
//!
//! ```
//! use bgls_circuit::{fuse, Circuit, Gate, Operation, Qubit};
//!
//! let mut c = Circuit::new();
//! // H T H on one qubit: three ops fuse into one U1 matrix
//! for g in [Gate::H, Gate::T, Gate::H] {
//!     c.push(Operation::gate(g, vec![Qubit(0)]).unwrap());
//! }
//! let fused = fuse(&c);
//! assert_eq!(fused.num_operations(), 1);
//! // H H fuses to the identity and is dropped outright
//! let mut id = Circuit::new();
//! for g in [Gate::H, Gate::H] {
//!     id.push(Operation::gate(g, vec![Qubit(0)]).unwrap());
//! }
//! assert_eq!(fuse(&id).num_operations(), 0);
//! ```

use crate::circuit::{Circuit, InsertStrategy};
use crate::gate::Gate;
use crate::op::Operation;
use crate::qubit::Qubit;
use bgls_linalg::{FxHashMap, Matrix, C64};
use std::sync::Arc;

/// Merges maximal runs of consecutive single-qubit gates on each qubit into
/// one [`Gate::U1`]. Multi-qubit gates, measurements, channels, and
/// parameterized gates act as barriers and are kept verbatim.
///
/// The resulting circuit has the same unitary action (exactly — matrices
/// are multiplied, nothing is approximated).
pub fn merge_single_qubit_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    // Pending accumulated 1q unitary per qubit.
    let mut pending: FxHashMap<Qubit, Matrix> = FxHashMap::default();

    let flush = |out: &mut Circuit, pending: &mut FxHashMap<Qubit, Matrix>, qs: &[Qubit]| {
        for q in qs {
            if let Some(u) = pending.remove(q) {
                out.append(
                    Operation::gate(Gate::U1(Arc::new(u)), vec![*q]).expect("1q by construction"),
                    InsertStrategy::Earliest,
                );
            }
        }
    };

    for op in circuit.all_operations() {
        let mergeable = op
            .as_gate()
            .map(|g| g.arity() == 1 && !g.is_parameterized())
            .unwrap_or(false);
        if mergeable {
            let q = op.support()[0];
            let u = op
                .as_gate()
                .unwrap()
                .unitary()
                .expect("non-parameterized gate has a unitary");
            let acc = pending.remove(&q).unwrap_or_else(|| Matrix::identity(2));
            pending.insert(q, u.matmul(&acc));
        } else {
            flush(&mut out, &mut pending, op.support());
            out.append(op.clone(), InsertStrategy::Earliest);
        }
    }
    let rest: Vec<Qubit> = pending.keys().copied().collect();
    let mut rest = rest;
    rest.sort_unstable();
    flush(&mut out, &mut pending, &rest);
    out
}

/// Removes operations that act as the identity: explicit [`Gate::I`] and
/// merged [`Gate::U1`] matrices equal to the identity up to global phase.
pub fn drop_identities(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new();
    for op in circuit.all_operations() {
        let is_identity = match op.as_gate() {
            Some(Gate::I) => true,
            Some(Gate::U1(m)) => is_identity_up_to_phase(m, 1e-12),
            _ => false,
        };
        if !is_identity {
            out.append(op.clone(), InsertStrategy::Earliest);
        }
    }
    out
}

/// The sampler-facing fusion pass behind `SimulatorOptions::fuse_gates`:
/// merges maximal runs of adjacent single-qubit gates on each qubit into
/// one [`Gate::U1`] (exact matrix products, nothing approximated), then
/// drops operations that fused to the identity.
///
/// A fused run of diagonal gates produces a diagonal matrix —
/// off-diagonal entries stay exactly zero under diagonal products — which
/// [`Gate::is_diagonal`] recognizes entry-wise, so the sampler's
/// `skip_diagonal_updates` optimization keeps firing on fused circuits.
/// Measurements, channels, multi-qubit gates, and parameterized gates act
/// as barriers and are kept verbatim.
pub fn fuse(circuit: &Circuit) -> Circuit {
    drop_identities(&merge_single_qubit_gates(circuit))
}

/// The full BGLS-oriented optimization pipeline (paper Sec. 3.2.2) —
/// today identical to [`fuse`], kept under the paper's name.
pub fn optimize_for_bgls(circuit: &Circuit) -> Circuit {
    fuse(circuit)
}

/// True when `m ~= e^{i phi} I` for some phase.
pub(crate) fn is_identity_up_to_phase(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    let phase = m[(0, 0)];
    if (phase.abs() - 1.0).abs() > tol {
        return false;
    }
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let expect = if i == j { phase } else { C64::ZERO };
            if !m[(i, j)].approx_eq(expect, tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::random::{generate_random_circuit, RandomCircuitParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn op(g: Gate, qs: &[u32]) -> Operation {
        Operation::gate(g, qs.iter().map(|&q| Qubit(q)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn five_sequential_gates_merge_to_one() {
        // the paper's illustrative example (Sec. 3.2.2)
        let mut c = Circuit::new();
        for g in [Gate::H, Gate::S, Gate::T, Gate::H, Gate::Z] {
            c.push(op(g, &[0]));
        }
        let merged = merge_single_qubit_gates(&c);
        assert_eq!(merged.num_operations(), 1);
        // unitary preserved exactly
        let u = c.unitary(1).unwrap();
        let v = merged.unitary(1).unwrap();
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn two_qubit_gates_are_barriers() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(op(Gate::S, &[0]));
        let merged = merge_single_qubit_gates(&c);
        // H | CNOT | S: nothing merges across the CNOT
        assert_eq!(merged.num_operations(), 3);
        let u = c.unitary(2).unwrap();
        let v = merged.unitary(2).unwrap();
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn measurements_are_barriers() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        c.push(op(Gate::H, &[0]));
        let merged = merge_single_qubit_gates(&c);
        assert_eq!(merged.num_operations(), 3);
        assert!(merged.has_measurements());
    }

    #[test]
    fn parameterized_gates_pass_through() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Rz(Param::symbol("t")), &[0]));
        c.push(op(Gate::H, &[0]));
        let merged = merge_single_qubit_gates(&c);
        // H | rz(t) | H — symbolic gate blocks merging
        assert_eq!(merged.num_operations(), 3);
        assert!(merged.is_parameterized());
    }

    #[test]
    fn identities_dropped() {
        let mut c = Circuit::new();
        c.push(op(Gate::I, &[0]));
        c.push(op(Gate::H, &[1]));
        c.push(op(Gate::X, &[0]));
        c.push(op(Gate::X, &[0])); // X X = I -> merged U1 is identity
        let opt = optimize_for_bgls(&c);
        assert_eq!(opt.num_operations(), 1);
    }

    #[test]
    fn s_sdg_cancels_up_to_phase() {
        let mut c = Circuit::new();
        c.push(op(Gate::T, &[0]));
        c.push(op(Gate::Tdg, &[0]));
        let opt = optimize_for_bgls(&c);
        assert_eq!(opt.num_operations(), 0);
    }

    #[test]
    fn fused_diagonal_runs_stay_flagged_diagonal() {
        // T S Z on one qubit: every factor diagonal, so the fused U1 must
        // still report is_diagonal (skip_diagonal_updates relies on it).
        let mut c = Circuit::new();
        for g in [Gate::T, Gate::S, Gate::Z] {
            c.push(op(g, &[0]));
        }
        let fused = fuse(&c);
        assert_eq!(fused.num_operations(), 1);
        let gate = fused.all_operations().next().unwrap().as_gate().unwrap();
        assert!(matches!(gate, Gate::U1(_)));
        assert!(gate.is_diagonal());

        // a non-diagonal factor clears the flag
        let mut c = Circuit::new();
        for g in [Gate::T, Gate::H, Gate::Z] {
            c.push(op(g, &[0]));
        }
        let fused = fuse(&c);
        let gate = fused.all_operations().next().unwrap().as_gate().unwrap();
        assert!(!gate.is_diagonal());
    }

    #[test]
    fn fuse_preserves_unitary_and_drops_identities() {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::H, &[0])); // cancels
        c.push(op(Gate::S, &[1]));
        c.push(op(Gate::T, &[1]));
        let fused = fuse(&c);
        // qubit 0 fused away entirely, qubit 1 fused to one U1
        assert_eq!(fused.num_operations(), 1);
        let u = c.unitary(2).unwrap();
        let v = fused.unitary(2).unwrap();
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn random_circuit_unitary_preserved() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = RandomCircuitParams {
            qubits: 4,
            moments: 20,
            op_density: 0.9,
            gate_set: vec![Gate::H, Gate::S, Gate::T, Gate::X, Gate::Cnot, Gate::Cz],
        };
        let c = generate_random_circuit(&params, &mut rng);
        let opt = optimize_for_bgls(&c);
        assert!(opt.num_operations() <= c.num_operations());
        let u = c.unitary(4).unwrap();
        let v = opt.unitary(4).unwrap();
        assert!(u.approx_eq(&v, 1e-9));
    }

    #[test]
    fn merged_count_drops_for_single_qubit_heavy_circuits() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = RandomCircuitParams {
            qubits: 8,
            moments: 50,
            op_density: 1.0,
            gate_set: vec![Gate::H, Gate::S, Gate::T, Gate::X],
        };
        let c = generate_random_circuit(&params, &mut rng);
        let opt = optimize_for_bgls(&c);
        // all 1q gates with no barriers: everything merges to <= 8 ops
        assert!(opt.num_operations() <= 8);
    }
}

//! OpenQASM 2.0 interop (paper Sec. 3.2.4: "usage with non-Cirq circuits").
//!
//! Supports the `qelib1.inc` gate vocabulary that maps onto our gate set,
//! a single quantum register, and classical registers fed by measurements.
//! Angle expressions accept the usual `pi`-arithmetic (`pi/2`, `3*pi/4`,
//! `-pi`, plain floats).
//!
//! The pair [`to_qasm`] / [`from_qasm`] round-trips every circuit whose
//! operations have a QASM spelling; constructs without one (channels,
//! explicit-matrix gates, symbolic parameters) fail with a typed
//! [`CircuitError`] rather than emitting unparseable text.
//!
//! ```
//! use bgls_circuit::{from_qasm, to_qasm, Circuit, Gate, Operation, Qubit};
//!
//! let mut c = Circuit::new();
//! c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
//! c.push(Operation::measure(Qubit::range(2), "m").unwrap());
//!
//! let text = to_qasm(&c).unwrap();
//! assert!(text.contains("cx q[0], q[1];"));
//! let back = from_qasm(&text).unwrap();
//! assert_eq!(back.num_operations(), c.num_operations());
//! ```

use crate::circuit::{Circuit, InsertStrategy};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::op::{OpKind, Operation};
use crate::param::Param;
use crate::pauli::PauliSum;
use crate::qubit::Qubit;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::fmt::Write as _;

/// Serializes a circuit to OpenQASM 2.0.
///
/// Fails with [`CircuitError::QasmUnsupported`] for constructs without a
/// QASM spelling (channels, matrix gates, iSWAP, symbolic parameters).
pub fn to_qasm(circuit: &Circuit) -> Result<String, CircuitError> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{n}];");

    // One classical register per measurement key, sized by qubit count.
    let mut cregs: Vec<(String, usize)> = Vec::new();
    for op in circuit.all_operations() {
        if let OpKind::Measure { key } = &op.kind {
            if !cregs.iter().any(|(k, _)| k == key.as_ref()) {
                cregs.push((key.to_string(), op.support().len()));
            }
        }
    }
    for (key, width) in &cregs {
        let _ = writeln!(out, "creg {key}[{width}];");
    }

    for op in circuit.all_operations() {
        match &op.kind {
            OpKind::Gate(g) => {
                let args: Vec<String> =
                    op.support().iter().map(|q| format!("q[{}]", q.0)).collect();
                let args = args.join(", ");
                let line = match g {
                    Gate::I => format!("id {args};"),
                    Gate::X => format!("x {args};"),
                    Gate::Y => format!("y {args};"),
                    Gate::Z => format!("z {args};"),
                    Gate::H => format!("h {args};"),
                    Gate::S => format!("s {args};"),
                    Gate::Sdg => format!("sdg {args};"),
                    Gate::T => format!("t {args};"),
                    Gate::Tdg => format!("tdg {args};"),
                    Gate::SqrtX => format!("sx {args};"),
                    Gate::SqrtXDag => format!("sxdg {args};"),
                    Gate::Rx(p) => format!("rx({}) {args};", fmt_angle(p)?),
                    Gate::Ry(p) => format!("ry({}) {args};", fmt_angle(p)?),
                    Gate::Rz(p) => format!("rz({}) {args};", fmt_angle(p)?),
                    Gate::ZPow(p) => {
                        // ZPow(t) = u1(pi t)
                        let v = p.value().map_err(|_| symbolic_err(g))?;
                        format!("u1({}) {args};", fmt_f64(v * PI))
                    }
                    Gate::Cnot => format!("cx {args};"),
                    Gate::Cz => format!("cz {args};"),
                    Gate::Swap => format!("swap {args};"),
                    Gate::CPhase(p) => format!("cu1({}) {args};", fmt_angle(p)?),
                    Gate::Rzz(p) => format!("rzz({}) {args};", fmt_angle(p)?),
                    Gate::Ccx => format!("ccx {args};"),
                    Gate::Ccz => return Err(CircuitError::QasmUnsupported("ccz".into())),
                    Gate::Cswap => format!("cswap {args};"),
                    Gate::ISwap => return Err(CircuitError::QasmUnsupported("iswap".into())),
                    Gate::U1(_) | Gate::U2(_) | Gate::U(..) => {
                        return Err(CircuitError::QasmUnsupported(
                            "arbitrary matrix gate".into(),
                        ))
                    }
                };
                out.push_str(&line);
                out.push('\n');
            }
            OpKind::Measure { key } => {
                for (i, q) in op.support().iter().enumerate() {
                    let _ = writeln!(out, "measure q[{}] -> {key}[{i}];", q.0);
                }
            }
            OpKind::Channel(c) => return Err(CircuitError::QasmUnsupported(c.name().to_string())),
        }
    }
    Ok(out)
}

/// The comment prefix carrying BGLS metadata through QASM: standard
/// tooling sees an ordinary `//` comment, [`from_qasm`] strips it, and
/// [`observable_pragmas`] reads it back.
const PRAGMA_PREFIX: &str = "// pragma bgls";

/// Serializes a circuit plus observable pragmas.
///
/// Each observable is emitted as a
/// `// pragma bgls observable: <pauli sum>` line after the program —
/// invisible to every other QASM consumer, recoverable by
/// [`observable_pragmas`]. The [`PauliSum`] `Display`/`FromStr` pair
/// round-trips exactly, so `observable_pragmas(to_qasm_with_observables(
/// c, obs))` returns `obs` term for term.
pub fn to_qasm_with_observables(
    circuit: &Circuit,
    observables: &[PauliSum],
) -> Result<String, CircuitError> {
    let mut out = to_qasm(circuit)?;
    for obs in observables {
        if obs.is_zero() {
            return Err(CircuitError::QasmUnsupported(
                "zero observable pragma".into(),
            ));
        }
        let _ = writeln!(out, "{PRAGMA_PREFIX} observable: {obs}");
    }
    Ok(out)
}

/// Extracts every `// pragma bgls observable:` line from a QASM source,
/// in order.
///
/// Pragmas ride in comments (trailing ones included), so the circuit
/// text parses identically with or without them. A recognized pragma
/// prefix followed by an unknown pragma kind or an unparseable Pauli
/// sum is a [`CircuitError::QasmParse`] carrying the 1-based line — a
/// typo in metadata should fail loudly, not silently drop the
/// observable.
pub fn observable_pragmas(source: &str) -> Result<Vec<PauliSum>, CircuitError> {
    let mut observables = Vec::new();
    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        let Some(i) = raw_line.find("//") else {
            continue;
        };
        let comment = &raw_line[i..];
        let Some(rest) = comment.strip_prefix(PRAGMA_PREFIX) else {
            continue;
        };
        // "bglsfoo" must not match the "bgls" pragma namespace
        if !rest.starts_with([' ', '\t']) {
            continue;
        }
        let body = rest.trim_start();
        let Some(expr) = body.strip_prefix("observable:") else {
            let kind = body.split_whitespace().next().unwrap_or("");
            return Err(parse_err(
                line,
                &format!("unknown bgls pragma '{}'", kind.trim_end_matches(':')),
            ));
        };
        let sum: PauliSum = expr
            .trim()
            .parse()
            .map_err(|e| parse_err(line, &format!("invalid observable pragma: {e}")))?;
        observables.push(sum);
    }
    Ok(observables)
}

fn symbolic_err(g: &Gate) -> CircuitError {
    CircuitError::QasmUnsupported(format!("symbolic parameter on {}", g.name()))
}

fn fmt_angle(p: &Param) -> Result<String, CircuitError> {
    match p.value() {
        Ok(v) => Ok(fmt_f64(v)),
        Err(_) => Err(CircuitError::QasmUnsupported("symbolic parameter".into())),
    }
}

fn fmt_f64(v: f64) -> String {
    // Enough digits for exact f64 round-trip.
    format!("{v:.17}")
}

/// Parses an OpenQASM 2.0 program (the subset produced by [`to_qasm`] plus
/// common hand-written variants) into a circuit.
///
/// Measurements are grouped by classical register: all `measure` lines
/// targeting the same creg become one multi-qubit measurement keyed by the
/// register name, ordered by classical index.
pub fn from_qasm(source: &str) -> Result<Circuit, CircuitError> {
    let mut circuit = Circuit::new();
    let mut qreg: Option<(String, usize)> = None;
    let mut cregs: HashMap<String, usize> = HashMap::new();
    // creg name -> (classical index -> qubit)
    let mut pending_measures: Vec<(String, Vec<(usize, Qubit)>)> = Vec::new();

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = lineno + 1;
        // strip comments
        let code = match raw_line.find("//") {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        for stmt in code.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg ") {
                let (name, size) = parse_reg_decl(rest, line)?;
                if qreg.is_some() {
                    return Err(parse_err(line, "multiple qreg declarations"));
                }
                qreg = Some((name, size));
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("creg ") {
                let (name, size) = parse_reg_decl(rest, line)?;
                cregs.insert(name, size);
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("measure ") {
                let (q, key, cidx) = parse_measure(rest, line, &qreg)?;
                if !cregs.contains_key(&key) {
                    return Err(parse_err(line, &format!("unknown creg '{key}'")));
                }
                match pending_measures.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, entries)) => entries.push((cidx, q)),
                    None => pending_measures.push((key, vec![(cidx, q)])),
                }
                continue;
            }
            if stmt.starts_with("barrier") {
                continue; // no-op for simulation purposes
            }
            // gate application: name[(args)] q[i](, q[j])*
            let op = parse_gate_stmt(stmt, line, &qreg)?;
            circuit.append(op, InsertStrategy::Earliest);
        }
    }

    for (key, mut entries) in pending_measures {
        entries.sort_by_key(|(cidx, _)| *cidx);
        let qubits: Vec<Qubit> = entries.into_iter().map(|(_, q)| q).collect();
        circuit.append(Operation::measure(qubits, &key)?, InsertStrategy::Earliest);
    }
    Ok(circuit)
}

fn parse_err(line: usize, message: &str) -> CircuitError {
    CircuitError::QasmParse {
        line,
        message: message.to_string(),
    }
}

/// Parses `name[size]`.
fn parse_reg_decl(rest: &str, line: usize) -> Result<(String, usize), CircuitError> {
    let rest = rest.trim();
    let open = rest
        .find('[')
        .ok_or_else(|| parse_err(line, "expected '[' in register declaration"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| parse_err(line, "expected ']' in register declaration"))?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| parse_err(line, "invalid register size"))?;
    Ok((name, size))
}

/// Parses `q[i] -> key[j]`.
fn parse_measure(
    rest: &str,
    line: usize,
    qreg: &Option<(String, usize)>,
) -> Result<(Qubit, String, usize), CircuitError> {
    let parts: Vec<&str> = rest.split("->").collect();
    if parts.len() != 2 {
        return Err(parse_err(line, "expected 'measure q[i] -> c[j]'"));
    }
    let q = parse_qubit_ref(parts[0].trim(), line, qreg)?;
    let target = parts[1].trim();
    let open = target
        .find('[')
        .ok_or_else(|| parse_err(line, "expected '[' in measure target"))?;
    let close = target
        .find(']')
        .ok_or_else(|| parse_err(line, "expected ']' in measure target"))?;
    let key = target[..open].trim().to_string();
    let cidx: usize = target[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| parse_err(line, "invalid classical index"))?;
    Ok((q, key, cidx))
}

fn parse_qubit_ref(
    s: &str,
    line: usize,
    qreg: &Option<(String, usize)>,
) -> Result<Qubit, CircuitError> {
    let (qname, qsize) = qreg
        .as_ref()
        .ok_or_else(|| parse_err(line, "qubit used before qreg declaration"))?;
    let open = s
        .find('[')
        .ok_or_else(|| parse_err(line, "expected '[' in qubit reference"))?;
    let close = s
        .find(']')
        .ok_or_else(|| parse_err(line, "expected ']' in qubit reference"))?;
    let name = s[..open].trim();
    if name != qname {
        return Err(parse_err(line, &format!("unknown register '{name}'")));
    }
    let idx: usize = s[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| parse_err(line, "invalid qubit index"))?;
    if idx >= *qsize {
        return Err(parse_err(line, &format!("qubit index {idx} out of range")));
    }
    Ok(Qubit(idx as u32))
}

/// Parses a gate application statement.
fn parse_gate_stmt(
    stmt: &str,
    line: usize,
    qreg: &Option<(String, usize)>,
) -> Result<Operation, CircuitError> {
    // split name(+params) from operand list at the first whitespace outside parens
    let mut depth = 0usize;
    let mut split_at = None;
    for (i, ch) in stmt.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                split_at = Some(i);
                break;
            }
            _ => {}
        }
    }
    let split_at = split_at.ok_or_else(|| parse_err(line, "expected gate operands"))?;
    let (head, operands) = stmt.split_at(split_at);

    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| parse_err(line, "unterminated parameter list"))?;
            let plist = &head[open + 1..close];
            let params: Result<Vec<f64>, CircuitError> = plist
                .split(',')
                .map(|e| parse_angle(e.trim(), line))
                .collect();
            (head[..open].trim(), params?)
        }
        None => (head.trim(), Vec::new()),
    };

    let qubits: Result<Vec<Qubit>, CircuitError> = operands
        .split(',')
        .map(|s| parse_qubit_ref(s.trim(), line, qreg))
        .collect();
    let qubits = qubits?;

    let need = |k: usize| -> Result<(), CircuitError> {
        if params.len() != k {
            Err(parse_err(
                line,
                &format!("gate {name} expects {k} parameter(s), got {}", params.len()),
            ))
        } else {
            Ok(())
        }
    };

    let gate = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::SqrtX,
        "sxdg" => Gate::SqrtXDag,
        "rx" => {
            need(1)?;
            Gate::Rx(params[0].into())
        }
        "ry" => {
            need(1)?;
            Gate::Ry(params[0].into())
        }
        "rz" => {
            need(1)?;
            Gate::Rz(params[0].into())
        }
        "u1" | "p" => {
            need(1)?;
            Gate::ZPow((params[0] / PI).into())
        }
        "cx" | "CX" => Gate::Cnot,
        "cz" => Gate::Cz,
        "swap" => Gate::Swap,
        "cu1" | "cp" => {
            need(1)?;
            Gate::CPhase(params[0].into())
        }
        "rzz" => {
            need(1)?;
            Gate::Rzz(params[0].into())
        }
        "ccx" => Gate::Ccx,
        "cswap" => Gate::Cswap,
        other => {
            return Err(parse_err(line, &format!("unsupported gate '{other}'")));
        }
    };
    Operation::gate(gate, qubits)
}

/// Evaluates a QASM angle expression: product/quotient chains over numbers
/// and `pi`, with an optional leading sign (e.g. `-3*pi/4`, `0.5`, `pi`).
fn parse_angle(expr: &str, line: usize) -> Result<f64, CircuitError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(parse_err(line, "empty angle expression"));
    }
    let (sign, rest) = match expr.strip_prefix('-') {
        Some(r) => (-1.0, r.trim()),
        None => (1.0, expr.strip_prefix('+').unwrap_or(expr).trim()),
    };
    let mut value = 1.0f64;
    let mut op = '*';
    for token in tokenize_angle(rest) {
        match token.as_str() {
            "*" | "/" => op = token.chars().next().unwrap(),
            t => {
                let v = if t == "pi" {
                    PI
                } else {
                    t.parse::<f64>()
                        .map_err(|_| parse_err(line, &format!("bad angle token '{t}'")))?
                };
                if op == '*' {
                    value *= v;
                } else {
                    value /= v;
                }
            }
        }
    }
    Ok(sign * value)
}

fn tokenize_angle(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '*' | '/' => {
                if !cur.trim().is_empty() {
                    tokens.push(cur.trim().to_string());
                }
                cur.clear();
                tokens.push(ch.to_string());
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        tokens.push(cur.trim().to_string());
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(g: Gate, qs: &[u32]) -> Operation {
        Operation::gate(g, qs.iter().map(|&q| Qubit(q)).collect::<Vec<_>>()).unwrap()
    }

    fn ghz_with_measure() -> Circuit {
        let mut c = Circuit::new();
        c.push(op(Gate::H, &[0]));
        c.push(op(Gate::Cnot, &[0, 1]));
        c.push(Operation::measure(vec![Qubit(0), Qubit(1)], "z").unwrap());
        c
    }

    #[test]
    fn export_contains_expected_lines() {
        let q = to_qasm(&ghz_with_measure()).unwrap();
        assert!(q.contains("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[2];"));
        assert!(q.contains("creg z[2];"));
        assert!(q.contains("h q[0];"));
        assert!(q.contains("cx q[0], q[1];"));
        assert!(q.contains("measure q[0] -> z[0];"));
        assert!(q.contains("measure q[1] -> z[1];"));
    }

    #[test]
    fn round_trip_preserves_operations() {
        let c = ghz_with_measure();
        let q = to_qasm(&c).unwrap();
        let back = from_qasm(&q).unwrap();
        assert_eq!(back.num_operations(), c.num_operations());
        assert!(back.has_measurements());
        let u1 = c.without_measurements().unitary(2).unwrap();
        let u2 = back.without_measurements().unitary(2).unwrap();
        assert!(u1.approx_eq(&u2, 1e-12));
    }

    #[test]
    fn round_trip_rotations_exactly() {
        let mut c = Circuit::new();
        c.push(op(Gate::Rx(0.12345.into()), &[0]));
        c.push(op(Gate::Rz((PI / 3.0).into()), &[1]));
        c.push(op(Gate::Rzz(0.77.into()), &[0, 1]));
        c.push(op(Gate::CPhase(1.5.into()), &[1, 2]));
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        let u1 = c.unitary(3).unwrap();
        let u2 = back.unitary(3).unwrap();
        assert!(u1.approx_eq(&u2, 1e-10));
    }

    #[test]
    fn zpow_round_trips_via_u1() {
        let mut c = Circuit::new();
        c.push(op(Gate::ZPow(0.25.into()), &[0]));
        let q = to_qasm(&c).unwrap();
        assert!(q.contains("u1("));
        let back = from_qasm(&q).unwrap();
        let u1 = c.unitary(1).unwrap();
        let u2 = back.unitary(1).unwrap();
        assert!(u1.approx_eq(&u2, 1e-12));
    }

    #[test]
    fn parses_pi_expressions() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[1];
            rz(pi/2) q[0];
            rx(-pi/4) q[0];
            ry(3*pi/4) q[0];
            rz(0.5) q[0];
        "#;
        let c = from_qasm(src).unwrap();
        assert_eq!(c.num_operations(), 4);
        let gates: Vec<f64> = c
            .all_operations()
            .map(|o| match o.as_gate().unwrap() {
                Gate::Rz(p) | Gate::Rx(p) | Gate::Ry(p) => p.value().unwrap(),
                _ => panic!(),
            })
            .collect();
        assert!((gates[0] - PI / 2.0).abs() < 1e-12);
        assert!((gates[1] + PI / 4.0).abs() < 1e-12);
        assert!((gates[2] - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((gates[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comments_and_barriers_ignored() {
        let src = "OPENQASM 2.0;\nqreg q[2];\n// a comment\nh q[0]; // trailing\nbarrier q[0], q[1];\ncx q[0], q[1];\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.num_operations(), 2);
    }

    #[test]
    fn unknown_gate_is_an_error_with_line() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfancy q[0];\n";
        match from_qasm(src) {
            Err(CircuitError::QasmParse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("fancy"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n";
        assert!(from_qasm(src).is_err());
    }

    #[test]
    fn channels_not_exportable() {
        use crate::channel::Channel;
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.5).unwrap(), vec![Qubit(0)]).unwrap());
        assert!(matches!(to_qasm(&c), Err(CircuitError::QasmUnsupported(_))));
    }

    #[test]
    fn symbolic_params_not_exportable() {
        let mut c = Circuit::new();
        c.push(op(Gate::Rz(Param::symbol("x")), &[0]));
        assert!(matches!(to_qasm(&c), Err(CircuitError::QasmUnsupported(_))));
    }

    #[test]
    fn observable_pragma_round_trips() {
        let obs: Vec<PauliSum> = vec![
            "1.5 * Z0 Z1 + 0.25 * X0".parse().unwrap(),
            "-2 * Y1 + 3".parse().unwrap(),
        ];
        let q = to_qasm_with_observables(&ghz_with_measure(), &obs).unwrap();
        assert!(q.contains("// pragma bgls observable: "));
        // the pragma is invisible to the circuit parser
        let back = from_qasm(&q).unwrap();
        assert_eq!(back.num_operations(), ghz_with_measure().num_operations());
        // and fully recoverable
        let got = observable_pragmas(&q).unwrap();
        assert_eq!(got.len(), 2);
        for (a, b) in got.iter().zip(&obs) {
            assert_eq!(a.num_terms(), b.num_terms());
            for ((ca, pa), (cb, pb)) in a.terms().iter().zip(b.terms()) {
                assert_eq!(pa, pb);
                assert!((ca.re - cb.re).abs() < 1e-15 && (ca.im - cb.im).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn observable_pragma_survives_as_trailing_comment() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0]; // pragma bgls observable: Z0 Z1\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.num_operations(), 1);
        let obs = observable_pragmas(src).unwrap();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].num_terms(), 1);
    }

    #[test]
    fn malformed_observable_pragmas_are_rejected_with_lines() {
        // unparseable Pauli sum
        let bad = "OPENQASM 2.0;\nqreg q[1];\n// pragma bgls observable: 1.5 * Q0\n";
        match observable_pragmas(bad) {
            Err(CircuitError::QasmParse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("observable"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // empty observable expression
        assert!(observable_pragmas("// pragma bgls observable:   \n").is_err());
        // unknown pragma kind in our namespace
        match observable_pragmas("// pragma bgls frobnicate: 3\n") {
            Err(CircuitError::QasmParse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("frobnicate"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // other tools' pragmas and near-miss prefixes are ignored
        assert!(observable_pragmas("// pragma other observable: Z0\n")
            .unwrap()
            .is_empty());
        assert!(observable_pragmas("// pragma bglsx observable: Z0\n")
            .unwrap()
            .is_empty());
        // a zero observable cannot be emitted
        assert!(matches!(
            to_qasm_with_observables(&ghz_with_measure(), &[PauliSum::new()]),
            Err(CircuitError::QasmUnsupported(_))
        ));
    }

    #[test]
    fn measure_grouping_by_creg_ordered_by_classical_index() {
        let src = "OPENQASM 2.0;\nqreg q[3];\ncreg m[3];\nh q[0];\nmeasure q[2] -> m[0];\nmeasure q[0] -> m[1];\nmeasure q[1] -> m[2];\n";
        let c = from_qasm(src).unwrap();
        let m = c
            .all_operations()
            .find(|o| o.is_measurement())
            .expect("has measurement");
        assert_eq!(m.support(), &[Qubit(2), Qubit(0), Qubit(1)]);
    }
}

//! # bgls-backend
//!
//! Runtime backend selection for the BGLS stack.
//!
//! The simulator crates are deliberately generic: `Simulator<S>` is
//! monomorphized per state type, and until this crate existed every
//! caller — apps, examples, benches, services — had to hard-wire one
//! concrete backend at compile time. This crate erases that choice to
//! runtime:
//!
//! * [`BackendKind`] — a plain enum naming each state representation
//!   (dense state vector, density matrix, CH-form stabilizer, chi-capped
//!   chain MPS, lazy tensor network);
//! * [`AnyState`] — an enum over all five concrete states that itself
//!   implements [`BglsState`], delegating every operation to the wrapped
//!   variant;
//! * [`SimulatorExt::for_backend`] — `Simulator::for_backend(kind, n,
//!   opts)`, the one-call constructor used by everything that accepts a
//!   backend name from a config file, CLI flag, or request payload.
//!
//! ```
//! use bgls_backend::{BackendKind, SimulatorExt};
//! use bgls_circuit::{Circuit, Gate, Operation, Qubit};
//! use bgls_core::{Simulator, SimulatorOptions};
//!
//! let mut ghz = Circuit::new();
//! ghz.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! ghz.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
//!
//! // the backend is a runtime value — e.g. parsed from a request
//! let kind: BackendKind = "chform".parse().unwrap();
//! let sim = Simulator::for_backend(kind, 2, SimulatorOptions::default()).with_seed(1);
//! let samples = sim.sample_final_bitstrings(&ghz, 100).unwrap();
//! assert!(samples.iter().all(|b| b.as_u64() == 0 || b.as_u64() == 0b11));
//! ```

#![warn(missing_docs)]

use bgls_circuit::{Channel, Gate, PauliString};
use bgls_core::{BglsState, BitString, OpFaultFn, SimError, Simulator, SimulatorOptions};
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions, PurifiedMps, PurifiedOptions};
use bgls_stabilizer::{ChForm, CliffordTableau};
use bgls_statevector::{DensityMatrix, StateVector};
use rand::RngCore;
use std::sync::Arc;

/// Names one of the available state representations.
///
/// This is the value that crosses configuration boundaries: it is
/// `Copy`, comparable, printable, and parseable (`"mps:16"` selects a
/// chain MPS with bond cap 16; `"mps"` the exact chain MPS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense pure state vector (`bgls-statevector`): exact for every
    /// unitary circuit, memory `O(2^n)`.
    StateVector,
    /// Dense density matrix (`bgls-statevector`): exact for noisy
    /// circuits — channels apply deterministically, so the multiplicity-map
    /// sample parallelization survives noise. Memory `O(4^n)`.
    DensityMatrix,
    /// CH-form stabilizer state (`bgls-stabilizer`): Clifford circuits at
    /// any width, `O(n^2)` per amplitude.
    ChForm,
    /// Canonical chain MPS (`bgls-mps`) with an optional bond-dimension
    /// cap; `chi: None` keeps the representation exact.
    ChainMps {
        /// Maximum bond dimension (`None` = unbounded/exact).
        chi: Option<usize>,
    },
    /// Lazy tensor network (`bgls-mps`): one tensor per qubit plus
    /// operator-Schmidt bonds, contracted per probability query.
    LazyNetwork,
    /// Locally-purified chain MPS (`bgls-mps`): a *mixed* state whose
    /// sites carry an extra Kraus/purification leg, so channels apply
    /// deterministically (like [`BackendKind::DensityMatrix`]) at
    /// `O(n chi^3 kappa)` cost instead of `O(4^n)` memory — the exact
    /// noisy backend beyond the density matrix's width wall.
    PurifiedMps {
        /// Maximum bond dimension (`None` = unbounded/exact).
        chi: Option<usize>,
        /// Maximum per-site Kraus-leg dimension (`None` = unbounded;
        /// the leg is still rank-compressed exactly after every
        /// channel).
        kraus_dim: Option<usize>,
    },
    /// Aaronson–Gottesman stabilizer tableau (`bgls-stabilizer`):
    /// Clifford circuits at any width with projective collapse, so
    /// mid-circuit-measurement Clifford circuits run (which the CH form
    /// rejects). Amplitude queries cost `O(n^3)` bit-ops vs the CH
    /// form's `O(n^2)`, so terminally-measured Clifford work should
    /// still route to [`BackendKind::ChForm`].
    Tableau,
}

impl BackendKind {
    /// Every *amplitude* backend kind in its default configuration —
    /// what agreement tests and capability probes iterate over. The
    /// chain-MPS entry is the *exact* (uncapped) variant; tests that
    /// want the truncation code path covered push a
    /// `ChainMps { chi: Some(..) }` explicitly. [`BackendKind::Tableau`]
    /// is deliberately excluded: it accepts only Clifford circuits, so
    /// generic agreement suites would reject it — Clifford-specific
    /// tests opt in explicitly. [`BackendKind::PurifiedMps`] is also
    /// excluded: like the density matrix it absorbs channels
    /// deterministically, but suites asserting per-branch trajectory
    /// behavior across `all()` would mis-specify it; the cross-backend
    /// conformance harness (`bgls-testkit`) declares it explicitly.
    pub fn all() -> Vec<BackendKind> {
        vec![
            BackendKind::StateVector,
            BackendKind::DensityMatrix,
            BackendKind::ChForm,
            BackendKind::ChainMps { chi: None },
            BackendKind::LazyNetwork,
        ]
    }

    /// Stable lowercase name (inverse of [`std::str::FromStr`]).
    pub fn name(&self) -> String {
        match self {
            BackendKind::StateVector => "statevector".into(),
            BackendKind::DensityMatrix => "density".into(),
            BackendKind::ChForm => "chform".into(),
            BackendKind::ChainMps { chi: None } => "mps".into(),
            BackendKind::ChainMps { chi: Some(chi) } => format!("mps:{chi}"),
            BackendKind::LazyNetwork => "lazy".into(),
            BackendKind::Tableau => "tableau".into(),
            BackendKind::PurifiedMps {
                chi: None,
                kraus_dim: None,
            } => "pmps".into(),
            BackendKind::PurifiedMps {
                chi: Some(chi),
                kraus_dim: None,
            } => format!("pmps:{chi}"),
            // empty chi slot keeps the name parseable: "pmps::4"
            BackendKind::PurifiedMps {
                chi,
                kraus_dim: Some(k),
            } => format!(
                "pmps:{}:{k}",
                chi.map(|c| c.to_string()).unwrap_or_default()
            ),
        }
    }

    /// True when the backend applies Kraus channels exactly rather than
    /// sampling trajectory branches (the density matrix and the
    /// purified MPS).
    pub fn channels_are_deterministic(&self) -> bool {
        matches!(
            self,
            BackendKind::DensityMatrix | BackendKind::PurifiedMps { .. }
        )
    }

    /// True when `self` and `other` name the same state representation,
    /// ignoring configuration such as the MPS bond cap — `mps:8` and
    /// `mps:64` are the same family.
    pub fn same_family(&self, other: BackendKind) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(&other)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Error from parsing a [`BackendKind`] name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    input: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend '{}' (expected statevector (sv) | density (dm) | chform \
             (stabilizer) | mps[:chi] | pmps[:chi[:kraus]] | lazy | tableau)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for BackendKind {
    type Err = ParseBackendError;

    /// Parsing is whitespace-trimmed and case-insensitive — backend
    /// names arrive from CLI flags, config files, and request payloads,
    /// where `" MPS:16 "` clearly means `mps:16`. `"stabilizer"` stays
    /// an alias for the CH form (the documented historical name); the
    /// tableau is addressed as `"tableau"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBackendError { input: s.into() };
        let normalized = s.trim().to_ascii_lowercase();
        Ok(match normalized.as_str() {
            "statevector" | "sv" => BackendKind::StateVector,
            "density" | "dm" => BackendKind::DensityMatrix,
            "chform" | "stabilizer" => BackendKind::ChForm,
            "mps" => BackendKind::ChainMps { chi: None },
            "lazy" => BackendKind::LazyNetwork,
            "tableau" => BackendKind::Tableau,
            "pmps" => BackendKind::PurifiedMps {
                chi: None,
                kraus_dim: None,
            },
            other => {
                // an optional-dimension slot: "" means unbounded
                let slot = |s: &str| -> Result<Option<usize>, ParseBackendError> {
                    let s = s.trim();
                    if s.is_empty() {
                        return Ok(None);
                    }
                    s.parse::<usize>()
                        .ok()
                        .filter(|&c| c >= 1)
                        .map(Some)
                        .ok_or_else(err)
                };
                if let Some(dims) = other.strip_prefix("pmps:") {
                    // "pmps:chi", "pmps:chi:kraus", "pmps::kraus"
                    let mut parts = dims.splitn(2, ':');
                    let chi = slot(parts.next().unwrap_or(""))?;
                    let kraus_dim = match parts.next() {
                        Some(k) => slot(k)?,
                        None => None,
                    };
                    if chi.is_none() && kraus_dim.is_none() {
                        return Err(err());
                    }
                    BackendKind::PurifiedMps { chi, kraus_dim }
                } else {
                    let chi = other
                        .strip_prefix("mps:")
                        .and_then(|c| c.trim().parse::<usize>().ok())
                        .filter(|&c| c >= 1)
                        .ok_or_else(err)?;
                    BackendKind::ChainMps { chi: Some(chi) }
                }
            }
        })
    }
}

/// A BGLS state chosen at runtime: one enum over every concrete backend,
/// itself a [`BglsState`].
///
/// `Simulator<AnyState>` is the type behind every runtime-selected
/// pipeline; the enum dispatch adds one match per operation, which is
/// noise next to the `O(2^n)`/`O(n^2)`/`O(n chi^3)` work each operation
/// performs.
#[derive(Debug)]
pub enum AnyState {
    /// Dense pure state.
    StateVector(StateVector),
    /// Dense mixed state.
    DensityMatrix(DensityMatrix),
    /// CH-form stabilizer state.
    ChForm(ChForm),
    /// Canonical chain MPS.
    ChainMps(ChainMps),
    /// Lazy tensor network.
    LazyNetwork(LazyNetworkState),
    /// Stabilizer tableau.
    Tableau(CliffordTableau),
    /// Locally-purified chain MPS (mixed state).
    PurifiedMps(PurifiedMps),
}

impl Clone for AnyState {
    fn clone(&self) -> Self {
        match self {
            AnyState::StateVector(s) => AnyState::StateVector(s.clone()),
            AnyState::DensityMatrix(s) => AnyState::DensityMatrix(s.clone()),
            AnyState::ChForm(s) => AnyState::ChForm(s.clone()),
            AnyState::ChainMps(s) => AnyState::ChainMps(s.clone()),
            AnyState::LazyNetwork(s) => AnyState::LazyNetwork(s.clone()),
            AnyState::Tableau(s) => AnyState::Tableau(s.clone()),
            AnyState::PurifiedMps(s) => AnyState::PurifiedMps(s.clone()),
        }
    }

    /// Buffer-reusing clone when both sides hold the same variant — the
    /// dense backends overwrite their amplitude buffers in place, which
    /// the per-trajectory scratch-state path relies on.
    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (AnyState::StateVector(s), AnyState::StateVector(src)) => s.clone_from(src),
            (AnyState::DensityMatrix(s), AnyState::DensityMatrix(src)) => s.clone_from(src),
            (AnyState::ChForm(s), AnyState::ChForm(src)) => s.clone_from(src),
            (AnyState::ChainMps(s), AnyState::ChainMps(src)) => s.clone_from(src),
            (AnyState::LazyNetwork(s), AnyState::LazyNetwork(src)) => s.clone_from(src),
            (AnyState::Tableau(s), AnyState::Tableau(src)) => s.clone_from(src),
            (AnyState::PurifiedMps(s), AnyState::PurifiedMps(src)) => s.clone_from(src),
            (slot, src) => *slot = src.clone(),
        }
    }
}

/// Delegates a method call to whichever variant is live.
macro_rules! dispatch {
    ($self:expr, $state:ident => $call:expr) => {
        match $self {
            AnyState::StateVector($state) => $call,
            AnyState::DensityMatrix($state) => $call,
            AnyState::ChForm($state) => $call,
            AnyState::ChainMps($state) => $call,
            AnyState::LazyNetwork($state) => $call,
            AnyState::Tableau($state) => $call,
            AnyState::PurifiedMps($state) => $call,
        }
    };
}

impl AnyState {
    /// The all-zeros initial state of `kind` on `n` qubits.
    pub fn zero(kind: BackendKind, n: usize) -> Self {
        match kind {
            BackendKind::StateVector => AnyState::StateVector(StateVector::zero(n)),
            BackendKind::DensityMatrix => AnyState::DensityMatrix(DensityMatrix::zero(n)),
            BackendKind::ChForm => AnyState::ChForm(ChForm::zero(n)),
            BackendKind::ChainMps { chi } => {
                let options = match chi {
                    Some(chi) => MpsOptions::with_max_bond(chi),
                    None => MpsOptions::exact(),
                };
                AnyState::ChainMps(ChainMps::zero(n, options))
            }
            BackendKind::LazyNetwork => AnyState::LazyNetwork(LazyNetworkState::zero(n)),
            BackendKind::Tableau => AnyState::Tableau(CliffordTableau::zero(n)),
            BackendKind::PurifiedMps { chi, kraus_dim } => {
                let mut options = match chi {
                    Some(chi) => PurifiedOptions::with_max_bond(chi),
                    None => PurifiedOptions::exact(),
                };
                options.max_kraus = kraus_dim;
                AnyState::PurifiedMps(PurifiedMps::zero(n, options))
            }
        }
    }

    /// Which [`BackendKind`] this state is (chi is reported as configured).
    pub fn kind(&self) -> BackendKind {
        match self {
            AnyState::StateVector(_) => BackendKind::StateVector,
            AnyState::DensityMatrix(_) => BackendKind::DensityMatrix,
            AnyState::ChForm(_) => BackendKind::ChForm,
            AnyState::ChainMps(m) => BackendKind::ChainMps {
                chi: m.options().max_bond,
            },
            AnyState::LazyNetwork(_) => BackendKind::LazyNetwork,
            AnyState::Tableau(_) => BackendKind::Tableau,
            AnyState::PurifiedMps(m) => BackendKind::PurifiedMps {
                chi: m.options().max_bond,
                kraus_dim: m.options().max_kraus,
            },
        }
    }
}

impl BglsState for AnyState {
    fn num_qubits(&self) -> usize {
        dispatch!(self, s => s.num_qubits())
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        dispatch!(self, s => s.apply_gate(gate, qubits))
    }

    fn probability(&self, bits: BitString) -> f64 {
        dispatch!(self, s => s.probability(bits))
    }

    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        // one dispatch for the whole batch, then the wrapped backend's
        // specialized batch evaluation
        dispatch!(self, s => s.probabilities_batch(candidates))
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        dispatch!(self, s => s.apply_kraus(channel, qubits, rng))
    }

    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        dispatch!(self, s => s.kraus_branch_probabilities(channel, qubits))
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        dispatch!(self, s => s.apply_kraus_branch(channel, branch, qubits))
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        dispatch!(self, s => s.project(qubit, value))
    }

    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        dispatch!(self, s => s.expectation(observable))
    }

    fn channels_are_deterministic(&self) -> bool {
        dispatch!(self, s => s.channels_are_deterministic())
    }
}

/// Extension constructor putting runtime backend selection onto
/// [`Simulator`].
pub trait SimulatorExt {
    /// A gate-by-gate simulator over the backend selected by `kind`,
    /// starting from `|0...0>` on `n_qubits` qubits.
    fn for_backend(kind: BackendKind, n_qubits: usize, options: SimulatorOptions) -> Self;
}

impl SimulatorExt for Simulator<AnyState> {
    fn for_backend(kind: BackendKind, n_qubits: usize, options: SimulatorOptions) -> Self {
        Simulator::new(AnyState::zero(kind, n_qubits)).with_options(options)
    }
}

/// Free-function form of [`SimulatorExt::for_backend`].
pub fn simulator_for(kind: BackendKind, n_qubits: usize) -> Simulator<AnyState> {
    Simulator::for_backend(kind, n_qubits, SimulatorOptions::default())
}

/// A declarative backend-failure injection: abort a run at the Nth
/// applied operation, optionally only when it executes on a given
/// backend family.
///
/// This is the fallible-op side of the fault-injection harness. The
/// spec is plain data so it can ride in a service's `FaultPlan`;
/// [`OpFaultSpec::arm`] turns it into the [`OpFaultFn`] hook a
/// [`Simulator::with_fallible_ops`] run consults. The armed hook is a
/// pure function of the application ordinal, so re-running the same
/// plan reproduces the same abort at the same operation — chaos tests
/// stay bit-for-bit deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct OpFaultSpec {
    /// 1-based application ordinal at which the run aborts (every
    /// operation from this ordinal on fails, so the first one hit
    /// surfaces the error).
    pub at_op: u64,
    /// Restrict the fault to one backend family (chi-insensitive, see
    /// [`BackendKind::same_family`]); `None` faults every backend.
    pub only_backend: Option<BackendKind>,
    /// Message carried in the resulting [`SimError::Faulted`].
    pub message: String,
}

impl OpFaultSpec {
    /// A spec failing every backend at `at_op`.
    pub fn new(at_op: u64, message: impl Into<String>) -> Self {
        OpFaultSpec {
            at_op,
            only_backend: None,
            message: message.into(),
        }
    }

    /// Restricts the fault to `kind`'s backend family.
    pub fn for_backend(mut self, kind: BackendKind) -> Self {
        self.only_backend = Some(kind);
        self
    }

    /// Arms the spec for a run on `kind`: `Some(hook)` when the fault
    /// applies to that backend, `None` when the run should proceed
    /// unfaulted (no hook installed — the simulator stays untouched).
    pub fn arm(&self, kind: BackendKind) -> Option<OpFaultFn> {
        match self.only_backend {
            Some(only) if !only.same_family(kind) => return None,
            _ => {}
        }
        let at = self.at_op.max(1);
        let message = self.message.clone();
        Some(Arc::new(move |ordinal, _op| {
            if ordinal >= at {
                Err(SimError::Faulted(message.clone()))
            } else {
                Ok(())
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Circuit, Operation, Qubit};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        for i in 1..n as u32 {
            c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
        }
        c
    }

    #[test]
    fn every_kind_round_trips_through_parse() {
        let mut kinds = BackendKind::all();
        kinds.push(BackendKind::ChainMps { chi: Some(16) });
        kinds.push(BackendKind::Tableau);
        for chi in [None, Some(32)] {
            for kraus_dim in [None, Some(4)] {
                kinds.push(BackendKind::PurifiedMps { chi, kraus_dim });
            }
        }
        for kind in kinds {
            let back: BackendKind = kind.name().parse().unwrap();
            assert_eq!(back, kind, "{kind}");
        }
        assert!("nope".parse::<BackendKind>().is_err());
        assert!("mps:0".parse::<BackendKind>().is_err());
        assert!("pmps:0".parse::<BackendKind>().is_err());
        assert!("pmps:".parse::<BackendKind>().is_err());
        assert!("pmps:8:x".parse::<BackendKind>().is_err());
    }

    #[test]
    fn parsing_trims_whitespace_and_ignores_case() {
        for (input, expected) in [
            ("  statevector ", BackendKind::StateVector),
            ("SV", BackendKind::StateVector),
            ("Density", BackendKind::DensityMatrix),
            ("CHFORM", BackendKind::ChForm),
            // "stabilizer" remains the documented CH-form alias
            ("Stabilizer", BackendKind::ChForm),
            ("Tableau", BackendKind::Tableau),
            (" MPS:16 ", BackendKind::ChainMps { chi: Some(16) }),
            ("\tlazy\n", BackendKind::LazyNetwork),
            (
                " PMPS:64:4 ",
                BackendKind::PurifiedMps {
                    chi: Some(64),
                    kraus_dim: Some(4),
                },
            ),
            (
                "pmps::8",
                BackendKind::PurifiedMps {
                    chi: None,
                    kraus_dim: Some(8),
                },
            ),
        ] {
            assert_eq!(input.parse::<BackendKind>().unwrap(), expected, "{input:?}");
        }
    }

    #[test]
    fn parse_error_lists_the_valid_names() {
        let err = "warp-drive".parse::<BackendKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("warp-drive"), "{msg}");
        for name in [
            "statevector",
            "density",
            "chform",
            "mps",
            "pmps",
            "lazy",
            "tableau",
        ] {
            assert!(msg.contains(name), "missing {name} in: {msg}");
        }
    }

    #[test]
    fn tableau_backend_samples_clifford_circuits_gate_by_gate() {
        let n = 3;
        let mut circuit = ghz(n);
        circuit.push(Operation::measure(Qubit::range(n), "z").unwrap());
        let sim = simulator_for(BackendKind::Tableau, n).with_seed(13);
        let result = sim.run(&circuit, 300).unwrap();
        let h = result.histogram("z").unwrap();
        let all = (1u64 << n) - 1;
        assert_eq!(h.count_value(0) + h.count_value(all), 300);
        assert!(h.count_value(0) > 75 && h.count_value(all) > 75);
    }

    #[test]
    fn tableau_backend_projects_mid_circuit_measurements() {
        // the CH form rejects this circuit (no projection); the tableau
        // route is exactly what makes it runnable
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(1)], "b").unwrap());
        let chform = simulator_for(BackendKind::ChForm, 2).with_seed(1);
        assert!(chform.run(&c, 10).is_err());
        let tableau = simulator_for(BackendKind::Tableau, 2).with_seed(1);
        let result = tableau.run(&c, 200).unwrap();
        let a = result.histogram("a").unwrap();
        let b = result.histogram("b").unwrap();
        assert_eq!(a.count_value(1), b.count_value(1), "perfectly correlated");
    }

    #[test]
    fn tableau_backend_rejects_non_clifford_and_channels() {
        use bgls_core::SimError;
        let mut t = Circuit::new();
        t.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        t.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let sim = simulator_for(BackendKind::Tableau, 1).with_seed(1);
        assert!(matches!(sim.run(&t, 5), Err(SimError::NotClifford(_))));
        let state = AnyState::zero(BackendKind::Tableau, 1);
        assert!(matches!(
            state.kraus_branch_probabilities(&Channel::bit_flip(0.5).unwrap(), &[0]),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn every_backend_samples_ghz_correlations() {
        let n = 3;
        for kind in BackendKind::all() {
            let sim = simulator_for(kind, n).with_seed(7);
            let samples = sim.sample_final_bitstrings(&ghz(n), 200).unwrap();
            let all = (1u64 << n) - 1;
            assert!(
                samples.iter().all(|b| b.as_u64() == 0 || b.as_u64() == all),
                "{kind}: non-GHZ outcome"
            );
            let ones = samples.iter().filter(|b| b.as_u64() == all).count();
            assert!((40..160).contains(&ones), "{kind}: ones = {ones}");
        }
    }

    #[test]
    fn any_state_reports_wrapped_kind() {
        for kind in BackendKind::all() {
            assert_eq!(AnyState::zero(kind, 2).kind(), kind);
        }
        let capped = AnyState::zero(BackendKind::ChainMps { chi: Some(8) }, 2);
        assert_eq!(capped.kind(), BackendKind::ChainMps { chi: Some(8) });
    }

    #[test]
    fn only_density_matrix_reports_deterministic_channels() {
        for kind in BackendKind::all() {
            let state = AnyState::zero(kind, 2);
            assert_eq!(
                state.channels_are_deterministic(),
                kind.channels_are_deterministic(),
                "{kind}"
            );
        }
    }

    #[test]
    fn purified_mps_is_a_deterministic_channel_backend() {
        let kind = BackendKind::PurifiedMps {
            chi: None,
            kraus_dim: None,
        };
        assert!(kind.channels_are_deterministic());
        let state = AnyState::zero(kind, 2);
        assert!(state.channels_are_deterministic());
        assert_eq!(state.kind(), kind);
        // the chi/kraus configuration is reported back and is
        // family-insensitive
        let capped = AnyState::zero(
            BackendKind::PurifiedMps {
                chi: Some(8),
                kraus_dim: Some(2),
            },
            2,
        );
        assert_eq!(
            capped.kind(),
            BackendKind::PurifiedMps {
                chi: Some(8),
                kraus_dim: Some(2),
            }
        );
        assert!(kind.same_family(capped.kind()));
        assert!(!kind.same_family(BackendKind::ChainMps { chi: None }));
        // channel branch contract mirrors the density matrix
        let ch = Channel::bit_flip(0.25).unwrap();
        let probs = state.kraus_branch_probabilities(&ch, &[0]).unwrap();
        assert_eq!(probs, vec![1.0]);
        let mut state = state;
        state.apply_kraus_branch(&ch, 0, &[0]).unwrap();
        assert!((state.probability(bgls_core::BitString::from_u64(2, 0b01)) - 0.25).abs() < 1e-12);
        assert!(matches!(
            state.apply_kraus_branch(&ch, 1, &[0]),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn purified_mps_samples_noisy_circuits_gate_by_gate() {
        // end-to-end: sample-parallel noisy sampling survives on the
        // purified chain because channels are deterministic
        let n = 3;
        let mut circuit = ghz(n);
        circuit.push(
            Operation::channel(Channel::depolarizing(0.05).unwrap(), vec![Qubit(1)]).unwrap(),
        );
        circuit.push(Operation::measure(Qubit::range(n), "z").unwrap());
        let kind = BackendKind::PurifiedMps {
            chi: None,
            kraus_dim: None,
        };
        let result = simulator_for(kind, n)
            .with_seed(11)
            .run(&circuit, 300)
            .unwrap();
        let h = result.histogram("z").unwrap();
        let all = (1u64 << n) - 1;
        // GHZ correlations dominate; weak depolarizing leaks a few
        // single-bit flips
        assert!(h.count_value(0) + h.count_value(all) > 250);
        // determinism: same seed, same histogram
        let again = simulator_for(kind, n)
            .with_seed(11)
            .run(&circuit, 300)
            .unwrap();
        assert_eq!(h.iter_sorted(), again.histogram("z").unwrap().iter_sorted());
    }

    #[test]
    fn probabilities_batch_matches_scalar_on_every_backend() {
        use bgls_core::BitString;
        let n = 3;
        for kind in BackendKind::all() {
            let sim = simulator_for(kind, n).with_seed(1);
            let state = sim.final_state(&ghz(n)).unwrap();
            let base = BitString::zeros(n);
            let cands = base.candidates(&[0, 1, 2]);
            let batched = state.probabilities_batch(&cands);
            for (c, p) in cands.iter().zip(&batched) {
                assert_eq!(
                    p.to_bits(),
                    state.probability(*c).to_bits(),
                    "{kind}: candidate {c}"
                );
            }
        }
    }

    #[test]
    fn kraus_branch_methods_dispatch_per_backend() {
        let ch = Channel::bit_flip(0.25).unwrap();
        for kind in BackendKind::all() {
            let state = AnyState::zero(kind, 2);
            let probs = state.kraus_branch_probabilities(&ch, &[0]);
            match kind {
                // CH form has no channel support: typed error, not panic
                BackendKind::ChForm => assert!(
                    matches!(probs, Err(bgls_core::SimError::Unsupported(_))),
                    "{kind}"
                ),
                // the density matrix absorbs the channel deterministically
                BackendKind::DensityMatrix => assert_eq!(probs.unwrap(), vec![1.0], "{kind}"),
                _ => {
                    let probs = probs.unwrap();
                    assert_eq!(probs.len(), 2, "{kind}");
                    assert!((probs[0] - 0.75).abs() < 1e-10, "{kind}: {probs:?}");
                    let mut state = state;
                    state.apply_kraus_branch(&ch, 1, &[0]).unwrap();
                    assert!(
                        (state.probability(bgls_core::BitString::from_u64(2, 0b01)) - 1.0).abs()
                            < 1e-10,
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn clone_from_preserves_state_across_variants() {
        let mut src = AnyState::zero(BackendKind::StateVector, 2);
        src.apply_gate(&Gate::X, &[1]).unwrap();
        // same variant: in-place copy
        let mut dst = AnyState::zero(BackendKind::StateVector, 2);
        dst.clone_from(&src);
        assert!((dst.probability(bgls_core::BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
        // different variant: falls back to a fresh clone
        let mut other = AnyState::zero(BackendKind::ChForm, 2);
        other.clone_from(&src);
        assert_eq!(other.kind(), BackendKind::StateVector);
        assert!((other.probability(bgls_core::BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn armed_op_fault_aborts_at_the_requested_ordinal() {
        let n = 3;
        let mut circuit = ghz(n);
        circuit.push(Operation::measure(Qubit::range(n), "z").unwrap());
        // the first CNOT is the 2nd applied operation
        let spec = OpFaultSpec::new(2, "injected");
        let sim = simulator_for(BackendKind::StateVector, n)
            .with_seed(5)
            .with_fallible_ops(spec.arm(BackendKind::StateVector).unwrap());
        match sim.run(&circuit, 10) {
            Err(SimError::Faulted(msg)) => assert_eq!(msg, "injected"),
            other => panic!("expected a Faulted error, got {other:?}"),
        }
        // a fault that never fires leaves the run bit-identical
        let late = OpFaultSpec::new(1_000, "never");
        let faulted = simulator_for(BackendKind::StateVector, n)
            .with_seed(5)
            .with_fallible_ops(late.arm(BackendKind::StateVector).unwrap())
            .run(&circuit, 50)
            .unwrap();
        let clean = simulator_for(BackendKind::StateVector, n)
            .with_seed(5)
            .run(&circuit, 50)
            .unwrap();
        assert_eq!(
            faulted.histogram("z").unwrap().iter_sorted(),
            clean.histogram("z").unwrap().iter_sorted()
        );
    }

    #[test]
    fn op_fault_spec_scopes_to_a_backend_family() {
        let spec = OpFaultSpec::new(1, "sv only").for_backend(BackendKind::StateVector);
        assert!(spec.arm(BackendKind::StateVector).is_some());
        assert!(spec.arm(BackendKind::ChForm).is_none());
        // chi configuration does not change the family
        let mps = OpFaultSpec::new(1, "mps").for_backend(BackendKind::ChainMps { chi: Some(8) });
        assert!(mps.arm(BackendKind::ChainMps { chi: None }).is_some());
        assert!(BackendKind::StateVector.same_family(BackendKind::StateVector));
        assert!(!BackendKind::StateVector.same_family(BackendKind::LazyNetwork));
    }

    #[test]
    fn num_qubits_delegates() {
        for kind in BackendKind::all() {
            assert_eq!(AnyState::zero(kind, 5).num_qubits(), 5, "{kind}");
        }
    }
}

//! Cross-validation of the CH-form stabilizer backend against the dense
//! state-vector backend: on random Clifford circuits, every computational
//! basis amplitude must agree (including global phase, since the CH form
//! tracks omega exactly).

use bgls_circuit::{
    generate_random_circuit, optimize_for_bgls, Gate, Operation, Qubit, RandomCircuitParams,
};
use bgls_core::{BglsState, BitString};
use bgls_stabilizer::ChForm;
use bgls_statevector::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// Applies a circuit to both backends and asserts amplitude agreement.
fn assert_backends_agree(circuit: &bgls_circuit::Circuit, n: usize, tol: f64) {
    let mut ch = ChForm::zero(n);
    let mut sv = StateVector::zero(n);
    for op in circuit.all_operations() {
        let g = op.as_gate().expect("unitary circuits only");
        let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
        ch.apply_gate(g, &qs)
            .unwrap_or_else(|e| panic!("chform failed on {}: {e}", g.name()));
        sv.apply_gate(g, &qs).unwrap();
    }
    let ket = ch.ket();
    for (x, amp) in sv.amplitudes().iter().enumerate() {
        assert!(
            ket[x].approx_eq(*amp, tol),
            "amplitude mismatch at {x:#b}: chform {:?} vs dense {:?}\ncircuit: {:?}",
            ket[x],
            amp,
            circuit
        );
    }
}

fn clifford_gate_pool() -> Vec<Gate> {
    vec![
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::SqrtX,
        Gate::SqrtXDag,
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
        Gate::ISwap,
        Gate::Rz((PI / 2.0).into()),
        Gate::Rz(PI.into()),
        Gate::Rz((-PI / 2.0).into()),
        Gate::Rx((PI / 2.0).into()),
        Gate::Ry((-PI / 2.0).into()),
        Gate::ZPow(0.5.into()),
        Gate::ZPow(1.5.into()),
        Gate::CPhase(PI.into()),
        Gate::Rzz((PI / 2.0).into()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random circuits over the full Clifford gate pool agree with the
    /// dense simulator on every amplitude.
    #[test]
    fn random_clifford_circuits_match_dense(
        seed in 0u64..10_000,
        n in 1usize..6,
        moments in 1usize..30,
    ) {
        let params = RandomCircuitParams {
            qubits: n,
            moments,
            op_density: 0.9,
            gate_set: clifford_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        assert_backends_agree(&circuit, n, 1e-8);
    }

    /// H/S/CNOT-only circuits (the paper's Fig. 3 workload) agree, and the
    /// merged (optimize_for_bgls) form agrees too — merged single-qubit
    /// Clifford products are re-recognized from their matrices.
    #[test]
    fn optimized_clifford_circuits_match_dense(
        seed in 0u64..10_000,
        n in 2usize..5,
        moments in 1usize..25,
    ) {
        let params = RandomCircuitParams::clifford(n, moments);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        assert_backends_agree(&circuit, n, 1e-8);
        let merged = optimize_for_bgls(&circuit);
        assert_backends_agree(&merged, n, 1e-8);
    }

    /// The total probability over all bitstrings is exactly 1 after any
    /// Clifford evolution (the CH form is never renormalized).
    #[test]
    fn norm_is_preserved(seed in 0u64..10_000, n in 1usize..7, moments in 1usize..40) {
        let params = RandomCircuitParams::clifford(n, moments);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let mut ch = ChForm::zero(n);
        for op in circuit.all_operations() {
            let g = op.as_gate().unwrap();
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            ch.apply_gate(g, &qs).unwrap();
        }
        let total: f64 = (0..1u64 << n)
            .map(|x| ch.probability(BitString::from_u64(n, x)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "norm = {total}");
    }
}

#[test]
fn deep_clifford_circuit_stays_exact() {
    // depth 400 on 8 qubits: amplitudes still match the dense backend
    let params = RandomCircuitParams::clifford(8, 400);
    let mut rng = StdRng::seed_from_u64(7);
    let circuit = generate_random_circuit(&params, &mut rng);
    assert_backends_agree(&circuit, 8, 1e-7);
}

#[test]
fn bgls_sampling_on_chform_matches_ideal_distribution() {
    use bgls_core::Simulator;
    // A fixed 3-qubit Clifford circuit with a non-uniform distribution.
    let mut c = bgls_circuit::Circuit::new();
    let ops: Vec<Operation> = vec![
        Operation::gate(Gate::H, vec![Qubit(0)]).unwrap(),
        Operation::gate(Gate::S, vec![Qubit(0)]).unwrap(),
        Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap(),
        Operation::gate(Gate::H, vec![Qubit(2)]).unwrap(),
        Operation::gate(Gate::Cz, vec![Qubit(1), Qubit(2)]).unwrap(),
        Operation::gate(Gate::H, vec![Qubit(1)]).unwrap(),
    ];
    for op in ops {
        c.push(op);
    }
    let ideal = StateVector::from_circuit(&c, 3)
        .unwrap()
        .born_distribution();

    let sim = Simulator::new(ChForm::zero(3)).with_seed(11);
    let samples = sim.sample_final_bitstrings(&c, 40_000).unwrap();
    let mut counts = [0u64; 8];
    for b in samples {
        counts[b.as_u64() as usize] += 1;
    }
    for (x, &cnt) in counts.iter().enumerate() {
        let freq = cnt as f64 / 40_000.0;
        assert!(
            (freq - ideal[x]).abs() < 0.02,
            "outcome {x}: freq {freq} vs ideal {}",
            ideal[x]
        );
    }
}

#[test]
fn ghz_chform_sampling_via_run() {
    use bgls_core::Simulator;
    let mut c = bgls_circuit::Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..10u32 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c.push(Operation::measure(Qubit::range(10), "z").unwrap());
    let sim = Simulator::new(ChForm::zero(10)).with_seed(5);
    let r = sim.run(&c, 2000).unwrap();
    let h = r.histogram("z").unwrap();
    let zeros = h.count_value(0);
    let ones = h.count_value((1u64 << 10) - 1);
    assert_eq!(zeros + ones, 2000);
    assert!(zeros > 850 && zeros < 1150, "zeros = {zeros}");
}

//! The Aaronson–Gottesman stabilizer tableau (Phys. Rev. A 70, 052328,
//! 2004) — the "stabilizer tableaux" the paper cites as the precursor of
//! the CH form (Sec. 4.1.2).
//!
//! The tableau has no amplitude access, but it can still answer
//! bitstring-probability queries by *forced measurement*
//! ([`CliffordTableau::basis_probability`]: each random-outcome qubit
//! contributes a factor 1/2 and collapses toward the target bit), so it
//! doubles as a full [`bgls_core::BglsState`] backend — one that, unlike
//! the CH form, also supports projective collapse
//! ([`CliffordTableau::project`]) and therefore mid-circuit-measurement
//! Clifford circuits. [`TableauSimulator`] additionally implements the
//! **conventional** way to sample Clifford circuits — evolve, then measure
//! qubit by qubit with collapse — and serves as the baseline the CH-form
//! gate-by-gate sampler is compared against.

use bgls_circuit::{Circuit, Gate, OpKind};
use bgls_core::{BitString, Histogram, SimError};
use bgls_linalg::{BitMatrix, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// CHP-style stabilizer tableau: rows `0..n` are destabilizers, rows
/// `n..2n` stabilizers; each row is a Pauli `(-1)^r X^x Z^z`.
#[derive(Clone, Debug)]
pub struct CliffordTableau {
    n: usize,
    x: BitMatrix, // (2n+1) x n would be ragged; store 2n rows + scratch separately
    z: BitMatrix,
    r: BitVec,
    scratch_x: BitVec,
    scratch_z: BitVec,
    scratch_r: u8, // phase exponent mod 4 during row accumulation
}

impl CliffordTableau {
    /// Tableau of the all-zeros state.
    pub fn zero(n: usize) -> Self {
        // Rows are indexed 0..2n inside (2n)x(2n) bit matrices; column j is
        // qubit j (only the first n columns are used).
        let rows = 2 * n;
        let mut x = BitMatrix::zeros(rows.max(1));
        let mut z = BitMatrix::zeros(rows.max(1));
        for i in 0..n {
            x.set(i, i, true); // destabilizer i = X_i
            z.set(n + i, i, true); // stabilizer i = Z_i
        }
        CliffordTableau {
            n,
            x,
            z,
            r: BitVec::zeros(rows.max(1)),
            scratch_x: BitVec::zeros(rows.max(1)),
            scratch_z: BitVec::zeros(rows.max(1)),
            scratch_r: 0,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn check(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                index: q,
                num_qubits: self.n,
            });
        }
        Ok(())
    }

    /// Hadamard on qubit `a`.
    pub fn h(&mut self, a: usize) -> Result<(), SimError> {
        self.check(a)?;
        for i in 0..2 * self.n {
            let xi = self.x.get(i, a);
            let zi = self.z.get(i, a);
            if xi && zi {
                self.r.flip(i);
            }
            self.x.set(i, a, zi);
            self.z.set(i, a, xi);
        }
        Ok(())
    }

    /// Phase gate on qubit `a`.
    pub fn s(&mut self, a: usize) -> Result<(), SimError> {
        self.check(a)?;
        for i in 0..2 * self.n {
            let xi = self.x.get(i, a);
            let zi = self.z.get(i, a);
            if xi && zi {
                self.r.flip(i);
            }
            self.z.set(i, a, zi ^ xi);
        }
        Ok(())
    }

    /// CNOT with control `a`, target `b`.
    pub fn cnot(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(SimError::Invalid("CNOT with identical qubits".into()));
        }
        for i in 0..2 * self.n {
            let xa = self.x.get(i, a);
            let xb = self.x.get(i, b);
            let za = self.z.get(i, a);
            let zb = self.z.get(i, b);
            if xa && zb && (xb == za) {
                self.r.flip(i);
            }
            self.x.set(i, b, xb ^ xa);
            self.z.set(i, a, za ^ zb);
        }
        Ok(())
    }

    /// Phase-function exponent g((x1,z1),(x2,z2)) from the CHP paper: the
    /// power of i acquired when multiplying the two single-qubit Paulis.
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i8 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i8) - (x2 as i8),
            (true, false) => (z2 as i8) * (2 * (x2 as i8) - 1),
            (false, true) => (x2 as i8) * (1 - 2 * (z2 as i8)),
        }
    }

    /// Multiplies row `i` into row `h` (`row_h <- row_i * row_h`).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = 2 * (self.r.get(h) as i32) + 2 * (self.r.get(i) as i32);
        for j in 0..self.n {
            phase += Self::g(
                self.x.get(i, j),
                self.z.get(i, j),
                self.x.get(h, j),
                self.z.get(h, j),
            ) as i32;
        }
        // For stabilizer rows the total phase is always real (0 or 2 mod 4).
        // Destabilizer rows may accumulate odd phases — CHP never reads
        // their sign, so collapsing to the high bit is safe.
        self.r.set(h, phase.rem_euclid(4) >= 2);
        let xi = self.x.row(i).clone();
        self.x.xor_into_row(h, &xi);
        let zi = self.z.row(i).clone();
        self.z.xor_into_row(h, &zi);
    }

    /// Multiplies row `i` into the scratch row.
    fn rowsum_scratch(&mut self, i: usize) {
        let mut phase: i32 = (self.scratch_r as i32) + 2 * (self.r.get(i) as i32);
        for j in 0..self.n {
            phase += Self::g(
                self.x.get(i, j),
                self.z.get(i, j),
                self.scratch_x.get(j),
                self.scratch_z.get(j),
            ) as i32;
        }
        self.scratch_r = phase.rem_euclid(4) as u8;
        for j in 0..self.n {
            if self.x.get(i, j) {
                self.scratch_x.flip(j);
            }
            if self.z.get(i, j) {
                self.scratch_z.flip(j);
            }
        }
    }

    /// Index of a stabilizer row anticommuting with `Z_a`, if any — the
    /// measurement of qubit `a` has a random 50/50 outcome exactly when
    /// one exists; otherwise the outcome is deterministic.
    fn anticommuting_stabilizer(&self, a: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&p| self.x.get(p, a))
    }

    /// Collapses a *random-outcome* measurement of qubit `a` to `outcome`,
    /// where `p` is the anticommuting stabilizer row found by
    /// [`CliffordTableau::anticommuting_stabilizer`]. This is the CHP
    /// update: every other anticommuting row absorbs row `p`, row `p`
    /// moves to the destabilizers, and `+-Z_a` becomes a stabilizer.
    fn collapse(&mut self, a: usize, p: usize, outcome: bool) {
        let n = self.n;
        for i in 0..2 * n {
            if i != p && self.x.get(i, a) {
                self.rowsum(i, p);
            }
        }
        // destabilizer p-n <- old stabilizer p; stabilizer p <- +-Z_a
        let xp = self.x.row(p).clone();
        self.x.set_row(p - n, xp);
        let zp = self.z.row(p).clone();
        self.z.set_row(p - n, zp);
        self.r.set(p - n, self.r.get(p));
        self.x.set_row(p, BitVec::zeros(self.x.n()));
        let mut znew = BitVec::zeros(self.z.n());
        znew.set(a, true);
        self.z.set_row(p, znew);
        self.r.set(p, outcome);
    }

    /// The deterministic measurement outcome of qubit `a` — only valid
    /// when no stabilizer anticommutes with `Z_a`. Accumulates the
    /// destabilizer-indicated stabilizers in the scratch row.
    fn deterministic_outcome(&mut self, a: usize) -> bool {
        let n = self.n;
        self.scratch_x = BitVec::zeros(self.x.n());
        self.scratch_z = BitVec::zeros(self.z.n());
        self.scratch_r = 0;
        for i in 0..n {
            if self.x.get(i, a) {
                self.rowsum_scratch(i + n);
            }
        }
        debug_assert_eq!(self.scratch_r % 2, 0);
        self.scratch_r.rem_euclid(4) == 2
    }

    /// Measures qubit `a` in the computational basis, collapsing the state.
    pub fn measure(&mut self, a: usize, rng: &mut impl Rng) -> Result<bool, SimError> {
        self.check(a)?;
        match self.anticommuting_stabilizer(a) {
            Some(p) => {
                let outcome = rng.gen::<bool>();
                self.collapse(a, p, outcome);
                Ok(outcome)
            }
            None => Ok(self.deterministic_outcome(a)),
        }
    }

    /// Projects qubit `a` onto the measurement outcome `value`,
    /// renormalizing implicitly (stabilizer states have no norm to
    /// track). When the outcome is random the projection succeeds with
    /// the forced value; when it is deterministic and contradicts
    /// `value`, the projector annihilates the state and the call fails
    /// with [`SimError::ZeroProbabilityEvent`]. This is what lets the
    /// tableau participate in the trajectory-forest and exact
    /// expectation walks, which the CH form (no projection) cannot.
    pub fn project(&mut self, a: usize, value: bool) -> Result<(), SimError> {
        self.check(a)?;
        match self.anticommuting_stabilizer(a) {
            Some(p) => {
                self.collapse(a, p, value);
                Ok(())
            }
            None if self.deterministic_outcome(a) == value => Ok(()),
            None => Err(SimError::ZeroProbabilityEvent),
        }
    }

    /// `|<bits|psi>|^2` by forced sequential measurement on a scratch
    /// clone: each qubit whose outcome is random contributes a factor
    /// `1/2` and is collapsed to the target bit; a deterministic qubit
    /// contradicting the target makes the whole amplitude zero. Runs in
    /// `O(n^3)` bit-operations worst case — asymptotically worse than
    /// the CH form's `O(n^2)` amplitude, but it turns the tableau into a
    /// full gate-by-gate (BGLS) backend rather than only a
    /// collapse-measurement sampler.
    pub fn basis_probability(&self, bits: &BitString) -> f64 {
        let mut t = self.clone();
        let mut p = 1.0;
        for q in 0..self.n {
            let target = bits.get(q);
            match t.anticommuting_stabilizer(q) {
                Some(row) => {
                    p *= 0.5;
                    t.collapse(q, row, target);
                }
                None => {
                    if t.deterministic_outcome(q) != target {
                        return 0.0;
                    }
                }
            }
        }
        p
    }

    /// Exact stabilizer expectation `<psi|P|psi>` of a Pauli string via
    /// the stabilizer group, without amplitude access: `P` anticommutes
    /// with some stabilizer generator (expectation `0`), or it equals a
    /// product of generators up to sign (expectation `+-1`). The product
    /// is reconstructed from the destabilizer rows — generator `i`
    /// participates exactly when `P` anticommutes with destabilizer `i`
    /// — and its sign accumulated with the CHP phase function.
    pub fn pauli_expectation(
        &self,
        observable: &bgls_circuit::PauliString,
    ) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check(q)?;
        }
        let n = self.n;
        let width = self.x.n();
        // P in row convention: per-qubit (x, z) bits, Y = (1, 1) with the
        // phase absorbed (the same convention tableau rows use).
        let mut px = BitVec::zeros(width);
        let mut pz = BitVec::zeros(width);
        for (q, op) in observable.iter() {
            let (xb, zb) = op.xz_bits();
            px.set(q, xb);
            pz.set(q, zb);
        }
        // Symplectic anticommutation test of P against row i.
        let anticommutes = |i: usize| -> bool { px.dot(self.z.row(i)) ^ pz.dot(self.x.row(i)) };
        if (n..2 * n).any(&anticommutes) {
            return Ok(0.0);
        }
        // P commutes with every stabilizer, so it is +-(product of the
        // generators flagged by the destabilizers). Accumulate that
        // product's sign exactly as rowsum does.
        let mut ax = BitVec::zeros(width);
        let mut az = BitVec::zeros(width);
        let mut phase: i32 = 0;
        for i in 0..n {
            if !anticommutes(i) {
                continue;
            }
            let row = n + i;
            phase += 2 * (self.r.get(row) as i32);
            for j in 0..n {
                phase +=
                    Self::g(self.x.get(row, j), self.z.get(row, j), ax.get(j), az.get(j)) as i32;
            }
            ax.xor_assign(self.x.row(row));
            az.xor_assign(self.z.row(row));
        }
        debug_assert!(
            ax == px && az == pz,
            "commuting Pauli must lie in the +- stabilizer group"
        );
        debug_assert_eq!(phase.rem_euclid(2), 0, "stabilizer sign must be real");
        Ok(if phase.rem_euclid(4) == 0 { 1.0 } else { -1.0 })
    }

    /// Applies a Clifford gate (same acceptance set as the CH form).
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        use Gate::*;
        let near = |v: f64, step: f64| -> Option<i64> {
            let k = (v / step).round();
            ((v - k * step).abs() <= 1e-9).then_some(k as i64)
        };
        let s_pow = |st: &mut Self, q: usize, k: i64| -> Result<(), SimError> {
            for _ in 0..k.rem_euclid(4) {
                st.s(q)?;
            }
            Ok(())
        };
        match gate {
            I => Ok(()),
            H => self.h(qubits[0]),
            S => self.s(qubits[0]),
            Sdg => s_pow(self, qubits[0], 3),
            Z => s_pow(self, qubits[0], 2),
            X => {
                // X = H Z H
                self.h(qubits[0])?;
                s_pow(self, qubits[0], 2)?;
                self.h(qubits[0])
            }
            Y => {
                // Y = Z X up to phase (global phase invisible to the tableau)
                s_pow(self, qubits[0], 2)?;
                self.h(qubits[0])?;
                s_pow(self, qubits[0], 2)?;
                self.h(qubits[0])
            }
            SqrtX => {
                self.h(qubits[0])?;
                self.s(qubits[0])?;
                self.h(qubits[0])
            }
            SqrtXDag => {
                self.h(qubits[0])?;
                s_pow(self, qubits[0], 3)?;
                self.h(qubits[0])
            }
            Cnot => self.cnot(qubits[0], qubits[1]),
            Cz => {
                self.h(qubits[1])?;
                self.cnot(qubits[0], qubits[1])?;
                self.h(qubits[1])
            }
            Swap => {
                self.cnot(qubits[0], qubits[1])?;
                self.cnot(qubits[1], qubits[0])?;
                self.cnot(qubits[0], qubits[1])
            }
            ISwap => {
                self.s(qubits[0])?;
                self.s(qubits[1])?;
                self.h(qubits[1])?;
                self.cnot(qubits[0], qubits[1])?;
                self.h(qubits[1])?;
                self.cnot(qubits[0], qubits[1])?;
                self.cnot(qubits[1], qubits[0])?;
                self.cnot(qubits[0], qubits[1])
            }
            Rz(p) => match near(p.value()?, PI / 2.0) {
                Some(k) => s_pow(self, qubits[0], k),
                None => Err(SimError::NotClifford(format!("rz({})", p.value()?))),
            },
            ZPow(p) => match near(p.value()?, 0.5) {
                Some(k) => s_pow(self, qubits[0], k),
                None => Err(SimError::NotClifford(format!("zpow({})", p.value()?))),
            },
            Rx(p) => match near(p.value()?, PI / 2.0) {
                Some(k) => {
                    self.h(qubits[0])?;
                    s_pow(self, qubits[0], k)?;
                    self.h(qubits[0])
                }
                None => Err(SimError::NotClifford(format!("rx({})", p.value()?))),
            },
            Ry(p) => match near(p.value()?, PI / 2.0) {
                Some(k) => {
                    s_pow(self, qubits[0], 3)?;
                    self.h(qubits[0])?;
                    s_pow(self, qubits[0], k)?;
                    self.h(qubits[0])?;
                    self.s(qubits[0])
                }
                None => Err(SimError::NotClifford(format!("ry({})", p.value()?))),
            },
            CPhase(p) => match near(p.value()?, PI) {
                Some(k) if k.rem_euclid(2) == 1 => {
                    self.h(qubits[1])?;
                    self.cnot(qubits[0], qubits[1])?;
                    self.h(qubits[1])
                }
                Some(_) => Ok(()),
                None => Err(SimError::NotClifford(format!("cp({})", p.value()?))),
            },
            Rzz(p) => match near(p.value()?, PI / 2.0) {
                Some(k) => {
                    self.cnot(qubits[0], qubits[1])?;
                    s_pow(self, qubits[1], k)?;
                    self.cnot(qubits[0], qubits[1])
                }
                None => Err(SimError::NotClifford(format!("rzz({})", p.value()?))),
            },
            other => Err(SimError::NotClifford(other.name().into())),
        }
    }
}

/// The tableau as a gate-by-gate (BGLS) backend: Clifford gates apply
/// natively, probabilities come from
/// [`CliffordTableau::basis_probability`], projection from
/// [`CliffordTableau::project`], and Pauli expectations from
/// [`CliffordTableau::pauli_expectation`]. Channels stay unsupported
/// (trait default) — noisy circuits belong on the density matrix or a
/// trajectory-capable amplitude backend.
///
/// Compared to the CH form this trades `O(n^2)` amplitudes for `O(n^3)`
/// ones, but gains projection — so mid-circuit-measurement Clifford
/// circuits (QEC syndrome extraction et al.) run on the forest engine
/// and the exact expectation walk, both of which the CH form rejects.
impl bgls_core::BglsState for CliffordTableau {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        CliffordTableau::apply_gate(self, gate, qubits)
    }

    fn probability(&self, bits: BitString) -> f64 {
        self.basis_probability(&bits)
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        CliffordTableau::project(self, qubit, value)
    }

    fn expectation(&self, observable: &bgls_circuit::PauliString) -> Result<f64, SimError> {
        self.pauli_expectation(observable)
    }
}

/// Conventional Clifford-circuit sampler over the tableau: evolve once per
/// repetition and measure every qubit with collapse (the qubit-by-qubit
/// strategy the gate-by-gate algorithm replaces).
pub struct TableauSimulator {
    n: usize,
    seed: Option<u64>,
}

impl TableauSimulator {
    /// Sampler over `n` qubits.
    pub fn new(n: usize) -> Self {
        TableauSimulator { n, seed: None }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Samples `repetitions` full-register bitstrings from the circuit's
    /// final state (measurement ops in the circuit are ignored; all
    /// qubits are measured at the end).
    pub fn sample(&self, circuit: &Circuit, repetitions: u64) -> Result<Vec<BitString>, SimError> {
        if circuit.num_qubits() > self.n {
            return Err(SimError::QubitOutOfRange {
                index: circuit.num_qubits() - 1,
                num_qubits: self.n,
            });
        }
        let mut rng = match self.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        // evolve once; clone the evolved tableau per repetition and collapse
        let mut base = CliffordTableau::zero(self.n);
        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    base.apply_gate(g, &qs)?;
                }
                OpKind::Measure { .. } => {}
                OpKind::Channel(c) => {
                    return Err(SimError::Unsupported(format!(
                        "channel {} on tableau",
                        c.name()
                    )))
                }
            }
        }
        let mut out = Vec::with_capacity(repetitions as usize);
        for _ in 0..repetitions {
            let mut t = base.clone();
            let mut bits = BitString::zeros(self.n);
            for q in 0..self.n {
                bits.set(q, t.measure(q, &mut rng)?);
            }
            out.push(bits);
        }
        Ok(out)
    }

    /// Histogram convenience over [`TableauSimulator::sample`].
    pub fn sample_histogram(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<Histogram, SimError> {
        let mut h = Histogram::new(self.n);
        for b in self.sample(circuit, repetitions)? {
            h.record(b, 1);
        }
        Ok(h)
    }
}

/// Applies a whole Clifford circuit to a fresh tableau (helper for tests
/// and benchmarks).
pub fn tableau_from_circuit(circuit: &Circuit, n: usize) -> Result<CliffordTableau, SimError> {
    let mut t = CliffordTableau::zero(n);
    for op in circuit.all_operations() {
        if let Some(g) = op.as_gate() {
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            t.apply_gate(g, &qs)?;
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Operation, Qubit};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn zero_state_measures_deterministically_zero() {
        let mut t = CliffordTableau::zero(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(!t.measure(q, &mut r).unwrap());
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = CliffordTableau::zero(2);
        t.apply_gate(&Gate::X, &[1]).unwrap();
        let mut r = rng();
        assert!(!t.measure(0, &mut r).unwrap());
        assert!(t.measure(1, &mut r).unwrap());
    }

    #[test]
    fn hadamard_gives_random_then_consistent_outcomes() {
        let mut ones = 0;
        for seed in 0..200 {
            let mut t = CliffordTableau::zero(1);
            t.h(0).unwrap();
            let mut r = StdRng::seed_from_u64(seed);
            let first = t.measure(0, &mut r).unwrap();
            // post-collapse remeasurement is deterministic
            assert_eq!(t.measure(0, &mut r).unwrap(), first);
            ones += first as u32;
        }
        assert!(ones > 70 && ones < 130, "ones = {ones}");
    }

    #[test]
    fn ghz_measurements_are_correlated() {
        for seed in 0..50 {
            let mut t = CliffordTableau::zero(3);
            t.h(0).unwrap();
            t.cnot(0, 1).unwrap();
            t.cnot(1, 2).unwrap();
            let mut r = StdRng::seed_from_u64(seed);
            let a = t.measure(0, &mut r).unwrap();
            assert_eq!(t.measure(1, &mut r).unwrap(), a);
            assert_eq!(t.measure(2, &mut r).unwrap(), a);
        }
    }

    #[test]
    fn hzh_equals_x() {
        let mut t = CliffordTableau::zero(1);
        t.h(0).unwrap();
        t.apply_gate(&Gate::Z, &[0]).unwrap();
        t.h(0).unwrap();
        let mut r = rng();
        assert!(t.measure(0, &mut r).unwrap());
    }

    #[test]
    fn s_squared_is_z_on_plus_state() {
        // |+> --S S--> Z|+> = |->; H maps it to |1>
        let mut t = CliffordTableau::zero(1);
        t.h(0).unwrap();
        t.s(0).unwrap();
        t.s(0).unwrap();
        t.h(0).unwrap();
        let mut r = rng();
        assert!(t.measure(0, &mut r).unwrap());
    }

    #[test]
    fn tableau_distribution_matches_chform_gate_by_gate() {
        use crate::ChForm;
        use bgls_circuit::{generate_random_circuit, RandomCircuitParams};
        use bgls_core::Simulator;

        let n = 4;
        let mut crng = StdRng::seed_from_u64(19);
        let circuit = generate_random_circuit(&RandomCircuitParams::clifford(n, 15), &mut crng);
        let reps = 20_000u64;

        let tab = TableauSimulator::new(n).with_seed(1);
        let ht = tab.sample_histogram(&circuit, reps).unwrap();

        let ch_samples = Simulator::new(ChForm::zero(n))
            .with_seed(2)
            .sample_final_bitstrings(&circuit, reps)
            .unwrap();
        let mut hc = Histogram::new(n);
        for b in ch_samples {
            hc.record(b, 1);
        }

        for v in 0..1u64 << n {
            let b = BitString::from_u64(n, v);
            let ft = ht.frequency(b);
            let fc = hc.frequency(b);
            assert!(
                (ft - fc).abs() < 0.02,
                "outcome {b}: tableau {ft} vs chform {fc}"
            );
        }
    }

    #[test]
    fn tableau_expectation_matches_chform() {
        use crate::ChForm;
        use bgls_circuit::{generate_random_circuit, PauliString, RandomCircuitParams};
        use bgls_core::BglsState as _;

        let n = 5;
        for seed in 0..6 {
            let mut crng = StdRng::seed_from_u64(seed);
            let circuit = generate_random_circuit(&RandomCircuitParams::clifford(n, 18), &mut crng);
            let tab = tableau_from_circuit(&circuit, n).unwrap();
            let mut ch = ChForm::zero(n);
            for op in circuit.all_operations() {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                ch.apply_gate(op.as_gate().unwrap(), &qs).unwrap();
            }
            for s in ["Z0", "X1 X2", "Y0 Z3", "Z0 Z1 Z2 Z3 Z4", "X0 Y1 Z2", "I"] {
                let p: PauliString = s.parse().unwrap();
                let a = tab.pauli_expectation(&p).unwrap();
                let b = ch.expectation(&p).unwrap();
                assert!(
                    (a - b).abs() < 1e-10,
                    "seed {seed}, {s}: tableau {a} vs chform {b}"
                );
            }
        }
        let t = CliffordTableau::zero(2);
        assert!(t.pauli_expectation(&"Z4".parse().unwrap()).is_err());
    }

    #[test]
    fn basis_probability_matches_chform_amplitudes() {
        use crate::ChForm;
        use bgls_circuit::{generate_random_circuit, RandomCircuitParams};
        use bgls_core::BglsState as _;

        let n = 4;
        for seed in 0..8 {
            let mut crng = StdRng::seed_from_u64(100 + seed);
            let circuit = generate_random_circuit(&RandomCircuitParams::clifford(n, 12), &mut crng);
            let tab = tableau_from_circuit(&circuit, n).unwrap();
            let mut ch = ChForm::zero(n);
            for op in circuit.all_operations() {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                ch.apply_gate(op.as_gate().unwrap(), &qs).unwrap();
            }
            for v in 0..1u64 << n {
                let b = BitString::from_u64(n, v);
                let pt = tab.basis_probability(&b);
                let pc = ch.probability(b);
                assert!(
                    (pt - pc).abs() < 1e-10,
                    "seed {seed}, {b}: tableau {pt} vs chform {pc}"
                );
            }
        }
    }

    #[test]
    fn project_forces_outcomes_and_rejects_impossible_ones() {
        // GHZ: project qubit 0 to 1 -> all qubits read 1 deterministically
        let mut t = CliffordTableau::zero(3);
        t.h(0).unwrap();
        t.cnot(0, 1).unwrap();
        t.cnot(1, 2).unwrap();
        t.project(0, true).unwrap();
        let mut r = rng();
        assert!(t.measure(1, &mut r).unwrap());
        assert!(t.measure(2, &mut r).unwrap());
        // projecting a deterministic qubit onto the wrong value is the
        // impossible event
        assert!(matches!(
            t.project(1, false),
            Err(SimError::ZeroProbabilityEvent)
        ));
        // onto the right value it is a no-op
        t.project(1, true).unwrap();
    }

    #[test]
    fn tableau_runs_as_a_gate_by_gate_backend() {
        use bgls_circuit::{Operation, Qubit};
        use bgls_core::Simulator;

        let n = 3;
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(1), Qubit(2)]).unwrap());
        c.push(Operation::measure(Qubit::range(n), "z").unwrap());
        let result = Simulator::new(CliffordTableau::zero(n))
            .with_seed(3)
            .run(&c, 500)
            .unwrap();
        let h = result.histogram("z").unwrap();
        assert_eq!(h.count_value(0b000) + h.count_value(0b111), 500);
        assert!(h.count_value(0b000) > 150 && h.count_value(0b111) > 150);
    }

    #[test]
    fn tableau_handles_mid_circuit_measurement_via_projection() {
        use bgls_circuit::{Operation, Qubit};
        use bgls_core::Simulator;

        // measure qubit 0 of a Bell pair mid-circuit, then CNOT onto a
        // fresh qubit: records "a" and "b" must agree perfectly
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(2)]).unwrap());
        c.push(Operation::measure(vec![Qubit(2)], "b").unwrap());
        let result = Simulator::new(CliffordTableau::zero(3))
            .with_seed(5)
            .run(&c, 400)
            .unwrap();
        let a = result.histogram("a").unwrap();
        let b = result.histogram("b").unwrap();
        assert_eq!(a.count_value(0), b.count_value(0));
        assert_eq!(a.count_value(1), b.count_value(1));
        assert!(a.count_value(0) > 100 && a.count_value(1) > 100);
    }

    #[test]
    fn non_clifford_gate_rejected() {
        let mut t = CliffordTableau::zero(1);
        assert!(matches!(
            t.apply_gate(&Gate::T, &[0]),
            Err(SimError::NotClifford(_))
        ));
    }

    #[test]
    fn channels_rejected_by_sampler() {
        use bgls_circuit::Channel;
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.5).unwrap(), vec![Qubit(0)]).unwrap());
        let sim = TableauSimulator::new(1);
        assert!(matches!(sim.sample(&c, 1), Err(SimError::Unsupported(_))));
    }

    #[test]
    fn clifford_rotations_accepted() {
        let mut t = CliffordTableau::zero(2);
        t.apply_gate(&Gate::Rz((PI / 2.0).into()), &[0]).unwrap();
        t.apply_gate(&Gate::Rx(PI.into()), &[1]).unwrap();
        t.apply_gate(&Gate::Rzz((PI / 2.0).into()), &[0, 1])
            .unwrap();
        let mut r = rng();
        // Rx(pi) = X up to phase: qubit 1 measures 1
        assert!(t.measure(1, &mut r).unwrap());
    }
}

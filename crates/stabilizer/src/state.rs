//! `BglsState` integration: Clifford gate dispatch onto the CH form.
//!
//! Every Clifford gate in the IR is decomposed into the CH-form primitive
//! set {X, Y, Z, H, S, Sdg, CNOT, CZ}. Rotation gates are accepted at
//! Clifford angles (tracking the global phase in omega); merged `U1`
//! matrices are recognized against the 24-element single-qubit Clifford
//! group, so `optimize_for_bgls` output stays runnable on stabilizer
//! states.

use crate::chform::ChForm;
use bgls_circuit::{Gate, PauliOp, PauliString};
use bgls_core::{AmplitudeState, BglsState, BitString, SimError};
use bgls_linalg::{BitVec, Matrix, C64};
use std::f64::consts::PI;
use std::sync::OnceLock;

/// Angle tolerance for recognizing Clifford rotation angles.
const ANGLE_TOL: f64 = 1e-9;

/// One primitive step in a single-qubit Clifford word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CliffordStep {
    /// Hadamard.
    H,
    /// Phase gate.
    S,
}

/// An entry of the single-qubit Clifford group table: the exact product
/// matrix of `word` and the word itself.
struct Clifford1q {
    matrix: Matrix,
    word: Vec<CliffordStep>,
}

/// The 24 single-qubit Clifford operations (up to global phase), each with
/// a shortest {H, S} word, built once by BFS.
fn clifford_1q_table() -> &'static Vec<Clifford1q> {
    static TABLE: OnceLock<Vec<Clifford1q>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let h = Gate::H.unitary().expect("H");
        let s = Gate::S.unitary().expect("S");
        let mut table: Vec<Clifford1q> = vec![Clifford1q {
            matrix: Matrix::identity(2),
            word: vec![],
        }];
        let mut frontier = std::collections::VecDeque::from([0usize]);
        while let Some(idx) = frontier.pop_front() {
            let (base, word) = (table[idx].matrix.clone(), table[idx].word.clone());
            for (gate_m, step) in [(&h, CliffordStep::H), (&s, CliffordStep::S)] {
                let cand = gate_m.matmul(&base);
                if table
                    .iter()
                    .any(|e| matrices_equal_up_to_phase(&e.matrix, &cand, 1e-9).is_some())
                {
                    continue;
                }
                let mut w = word.clone();
                w.push(step); // applied after the existing word
                table.push(Clifford1q {
                    matrix: cand,
                    word: w,
                });
                frontier.push_back(table.len() - 1);
            }
        }
        assert_eq!(
            table.len(),
            24,
            "single-qubit Clifford group has 24 classes"
        );
        table
    })
}

/// If `b = e^{i phi} a`, returns `e^{i phi}`.
fn matrices_equal_up_to_phase(a: &Matrix, b: &Matrix, tol: f64) -> Option<C64> {
    debug_assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    // find a reference entry with solid magnitude in a
    let mut phase = None;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            if a[(i, j)].abs() > 0.3 {
                if b[(i, j)].abs() <= tol {
                    return None;
                }
                phase = Some(b[(i, j)] / a[(i, j)]);
                break;
            }
        }
        if phase.is_some() {
            break;
        }
    }
    let phase = phase?;
    if (phase.abs() - 1.0).abs() > 1e-6 {
        return None;
    }
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            if !(a[(i, j)] * phase).approx_eq(b[(i, j)], tol) {
                return None;
            }
        }
    }
    Some(phase)
}

/// Decomposes a single-qubit unitary into an {H, S} word and a global
/// phase, when it is Clifford. Public so the near-Clifford channel and
/// tests can reuse it.
pub fn decompose_clifford_1q(u: &Matrix) -> Option<(Vec<CliffordStep>, C64)> {
    for entry in clifford_1q_table() {
        if let Some(phase) = matrices_equal_up_to_phase(&entry.matrix, u, 1e-8) {
            return Some((entry.word.clone(), phase));
        }
    }
    None
}

/// Nearest integer when within [`ANGLE_TOL`]; `None` otherwise.
fn near_integer(x: f64) -> Option<i64> {
    let r = x.round();
    if (x - r).abs() <= ANGLE_TOL {
        Some(r as i64)
    } else {
        None
    }
}

/// Applies `ZPow(half_steps * 0.5)` (i.e. S^half_steps) to qubit `q`.
fn apply_s_power(st: &mut ChForm, q: usize, half_steps: i64) -> Result<(), SimError> {
    match half_steps.rem_euclid(4) {
        0 => Ok(()),
        1 => st.apply_s(q),
        2 => st.apply_z(q),
        _ => st.apply_sdg(q),
    }
}

/// Applies `Rz(theta)` at a Clifford angle (theta = k pi/2), tracking the
/// global phase `e^{-i theta / 2}` in omega.
fn apply_rz_clifford(st: &mut ChForm, q: usize, theta: f64) -> Result<(), SimError> {
    let k = near_integer(theta / (PI / 2.0))
        .ok_or_else(|| SimError::NotClifford(format!("rz({theta})")))?;
    apply_s_power(st, q, k)?;
    st.scale_omega(C64::cis(-theta / 2.0));
    Ok(())
}

/// Applies any Clifford gate from the IR to a CH-form state.
///
/// Returns [`SimError::NotClifford`] for non-Clifford gates (T, Toffoli,
/// generic rotations, non-Clifford matrices). This is the strict
/// dispatcher; the near-Clifford channel wraps it with the stochastic
/// sum-over-Cliffords substitution.
pub fn apply_clifford_gate(st: &mut ChForm, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
    use Gate::*;
    match gate {
        I => Ok(()),
        X => st.apply_x(qubits[0]),
        Y => st.apply_y(qubits[0]),
        Z => st.apply_z(qubits[0]),
        H => st.apply_h(qubits[0]),
        S => st.apply_s(qubits[0]),
        Sdg => st.apply_sdg(qubits[0]),
        SqrtX => {
            // sqrt(X) = H S H exactly
            let q = qubits[0];
            st.apply_h(q)?;
            st.apply_s(q)?;
            st.apply_h(q)
        }
        SqrtXDag => {
            let q = qubits[0];
            st.apply_h(q)?;
            st.apply_sdg(q)?;
            st.apply_h(q)
        }
        T | Tdg => Err(SimError::NotClifford(gate.name().into())),
        Rz(p) => apply_rz_clifford(st, qubits[0], p.value()?),
        ZPow(p) => {
            let t = p.value()?;
            let k =
                near_integer(t / 0.5).ok_or_else(|| SimError::NotClifford(format!("zpow({t})")))?;
            apply_s_power(st, qubits[0], k)
        }
        Rx(p) => {
            // Rx = H Rz H
            let q = qubits[0];
            let theta = p.value()?;
            if near_integer(theta / (PI / 2.0)).is_none() {
                return Err(SimError::NotClifford(format!("rx({theta})")));
            }
            st.apply_h(q)?;
            apply_rz_clifford(st, q, theta)?;
            st.apply_h(q)
        }
        Ry(p) => {
            // Ry = S Rx Sdg (operator product; rightmost acts first)
            let q = qubits[0];
            let theta = p.value()?;
            if near_integer(theta / (PI / 2.0)).is_none() {
                return Err(SimError::NotClifford(format!("ry({theta})")));
            }
            st.apply_sdg(q)?;
            st.apply_h(q)?;
            apply_rz_clifford(st, q, theta)?;
            st.apply_h(q)?;
            st.apply_s(q)
        }
        U1(m) => {
            let (word, phase) = decompose_clifford_1q(m)
                .ok_or_else(|| SimError::NotClifford("u1q matrix".into()))?;
            let q = qubits[0];
            for step in word {
                match step {
                    CliffordStep::H => st.apply_h(q)?,
                    CliffordStep::S => st.apply_s(q)?,
                }
            }
            st.scale_omega(phase);
            Ok(())
        }
        Cnot => st.apply_cnot(qubits[0], qubits[1]),
        Cz => st.apply_cz(qubits[0], qubits[1]),
        Swap => {
            let (a, b) = (qubits[0], qubits[1]);
            st.apply_cnot(a, b)?;
            st.apply_cnot(b, a)?;
            st.apply_cnot(a, b)
        }
        ISwap => {
            // iSWAP = SWAP . CZ . (S (x) S): rightmost acts first
            let (a, b) = (qubits[0], qubits[1]);
            st.apply_s(a)?;
            st.apply_s(b)?;
            st.apply_cz(a, b)?;
            st.apply_cnot(a, b)?;
            st.apply_cnot(b, a)?;
            st.apply_cnot(a, b)
        }
        CPhase(p) => {
            let theta = p.value()?;
            let k = near_integer(theta / PI)
                .ok_or_else(|| SimError::NotClifford(format!("cp({theta})")))?;
            if k.rem_euclid(2) == 1 {
                st.apply_cz(qubits[0], qubits[1])?;
            }
            Ok(())
        }
        Rzz(p) => {
            // Rzz(theta) = CX . (I (x) Rz(theta)) . CX
            let theta = p.value()?;
            if near_integer(theta / (PI / 2.0)).is_none() {
                return Err(SimError::NotClifford(format!("rzz({theta})")));
            }
            let (a, b) = (qubits[0], qubits[1]);
            st.apply_cnot(a, b)?;
            apply_rz_clifford(st, b, theta)?;
            st.apply_cnot(a, b)
        }
        U2(_) | U(..) | Ccx | Ccz | Cswap => Err(SimError::NotClifford(gate.name().into())),
    }
}

impl BglsState for ChForm {
    fn num_qubits(&self) -> usize {
        ChForm::num_qubits(self)
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        apply_clifford_gate(self, gate, qubits)
    }

    fn probability(&self, bits: BitString) -> f64 {
        let x = BitVec::from_u64(bits.len(), bits.as_u64());
        self.probability_of(&x)
    }

    /// Batched probabilities sharing the `U_C^dag` Pauli-conjugation
    /// prefix across the candidate set (see
    /// [`ChForm::probabilities_batch_of`]); bit-identical to scalar
    /// [`ChForm::probability_of`] calls.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        let xs: Vec<BitVec> = candidates
            .iter()
            .map(|b| BitVec::from_u64(b.len(), b.as_u64()))
            .collect();
        self.probabilities_batch_of(&xs)
    }

    /// Exact stabilizer expectation via `U_C` conjugation
    /// ([`ChForm::pauli_expectation`]): `O(n^2 / 64)` per term,
    /// independent of circuit depth, always one of `{0, +-1}` (up to the
    /// state's global scalar) because a Pauli either sits in the
    /// stabilizer group up to sign or anticommutes with some stabilizer.
    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        let n = ChForm::num_qubits(self);
        if let Some(q) = observable.max_qubit() {
            if q >= n {
                return Err(SimError::QubitOutOfRange {
                    index: q,
                    num_qubits: n,
                });
            }
        }
        // P = i^{ny} X^x Z^z (Y contributes to both masks plus one i).
        let mut x = BitVec::zeros(n);
        let mut z = BitVec::zeros(n);
        let mut ny = 0u8;
        for (q, op) in observable.iter() {
            let (xb, zb) = op.xz_bits();
            if xb {
                x.set(q, true);
            }
            if zb {
                z.set(q, true);
            }
            if op == PauliOp::Y {
                ny = (ny + 1) % 4;
            }
        }
        Ok(self.pauli_expectation(&x, &z, ny).re)
    }
}

impl AmplitudeState for ChForm {
    fn amplitude(&self, bits: BitString) -> C64 {
        let x = BitVec::from_u64(bits.len(), bits.as_u64());
        ChForm::amplitude(self, &x)
    }
}

/// The paper's `compute_probability_stabilizer_state` hook.
pub fn compute_probability_stabilizer_state(state: &ChForm, bits: BitString) -> f64 {
    state.probability(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::Param;

    #[test]
    fn clifford_table_has_24_entries_with_unitary_products() {
        let table = clifford_1q_table();
        assert_eq!(table.len(), 24);
        for e in table {
            assert!(e.matrix.is_unitary(1e-9));
            assert!(e.word.len() <= 8, "word too long: {:?}", e.word);
        }
    }

    #[test]
    fn decompose_recognizes_standard_gates() {
        for g in [
            Gate::I,
            Gate::H,
            Gate::S,
            Gate::Z,
            Gate::X,
            Gate::Y,
            Gate::SqrtX,
        ] {
            let u = g.unitary().unwrap();
            let (word, phase) =
                decompose_clifford_1q(&u).unwrap_or_else(|| panic!("{} not recognized", g.name()));
            // rebuild and compare
            let mut m = Matrix::identity(2);
            for step in &word {
                let gm = match step {
                    CliffordStep::H => Gate::H.unitary().unwrap(),
                    CliffordStep::S => Gate::S.unitary().unwrap(),
                };
                m = gm.matmul(&m);
            }
            assert!(m.scale(phase).approx_eq(&u, 1e-9), "{}", g.name());
        }
    }

    #[test]
    fn decompose_rejects_t_gate() {
        assert!(decompose_clifford_1q(&Gate::T.unitary().unwrap()).is_none());
    }

    #[test]
    fn t_gate_rejected_by_dispatch() {
        let mut st = ChForm::zero(1);
        assert!(matches!(
            st.apply_gate(&Gate::T, &[0]),
            Err(SimError::NotClifford(_))
        ));
    }

    #[test]
    fn rz_at_non_clifford_angle_rejected() {
        let mut st = ChForm::zero(1);
        assert!(matches!(
            st.apply_gate(&Gate::Rz((PI / 4.0).into()), &[0]),
            Err(SimError::NotClifford(_))
        ));
    }

    #[test]
    fn trait_expectation_matches_statevector_on_random_clifford() {
        use bgls_circuit::{generate_random_circuit, RandomCircuitParams};
        use bgls_statevector::StateVector;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let n = 5;
        let mut crng = StdRng::seed_from_u64(11);
        let circuit = generate_random_circuit(&RandomCircuitParams::clifford(n, 20), &mut crng);
        let mut ch = ChForm::zero(n);
        let mut sv = StateVector::zero(n);
        for op in circuit.all_operations() {
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            let g = op.as_gate().unwrap();
            ch.apply_gate(g, &qs).unwrap();
            sv.apply_gate(g, &qs).unwrap();
        }
        for s in [
            "I",
            "Z0",
            "X3",
            "Y1",
            "Z0 Z4",
            "X0 Y2 Z3",
            "Y0 Y1 Y2",
            "X0 X1 X2 X3 X4",
        ] {
            let p: PauliString = s.parse().unwrap();
            let a = ch.expectation(&p).unwrap();
            let b = sv.expectation(&p).unwrap();
            assert!((a - b).abs() < 1e-10, "{s}: chform {a} vs sv {b}");
            // stabilizer expectations of Hermitian Paulis are 0 or +-1
            assert!(a.abs() < 1e-10 || (a.abs() - 1.0).abs() < 1e-10, "{s}: {a}");
        }
        assert!(ch.expectation(&"Z9".parse().unwrap()).is_err());
    }

    #[test]
    fn ghz_stabilizer_expectations() {
        let mut st = ChForm::zero(3);
        st.apply_h(0).unwrap();
        st.apply_cnot(0, 1).unwrap();
        st.apply_cnot(1, 2).unwrap();
        let cases = [
            ("X0 X1 X2", 1.0),
            ("Z0 Z1", 1.0),
            ("Z1 Z2", 1.0),
            ("Z0", 0.0),
            ("X0", 0.0),
            ("Y0 Y1 X2", -1.0),
        ];
        for (s, want) in cases {
            let p: PauliString = s.parse().unwrap();
            let got = st.expectation(&p).unwrap();
            assert!((got - want).abs() < 1e-12, "{s}: {got} vs {want}");
        }
    }

    #[test]
    fn symbolic_parameter_surfaces_circuit_error() {
        let mut st = ChForm::zero(1);
        assert!(matches!(
            st.apply_gate(&Gate::Rz(Param::symbol("x")), &[0]),
            Err(SimError::Circuit(_))
        ));
    }
}

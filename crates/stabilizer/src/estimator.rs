//! Monte-Carlo amplitude estimation via weighted sum-over-Cliffords.
//!
//! The paper's `act_on_near_clifford` substitutes each `R(theta)` by I or
//! S *without* importance weights, which biases the sampled distribution
//! (the overlap decay of Figs. 4-5). This module implements the unbiased
//! counterpart from Bravyi et al. 2019: expand the circuit over its
//! `2^N` Clifford branches,
//!
//! ```text
//! <b|U|0> = sum_branches (prod_k c_{k, branch_k}) <b|C_branch|0>,
//! ```
//!
//! and estimate the sum by importance sampling — branch `k` chosen with
//! probability `|c_k| / l1_k`, contributing weight `l1_k * c_k / |c_k|`.
//! The estimator is unbiased with variance governed by the product of
//! stabilizer extents `prod_k zeta_k` — the quantity the paper calls "a
//! heuristic of how non-Clifford the system is" (Sec. 4.2.1). This is the
//! paper's natural "future work" completion: exact near-Clifford
//! simulation at a cost exponential only in the T count.

use crate::chform::ChForm;
use crate::near_clifford::rz_decomposition_coefficients;
use crate::state::apply_clifford_gate;
use bgls_circuit::{Circuit, Gate, OpKind};
use bgls_core::{BitString, SimError};
use bgls_linalg::{BitVec, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

fn rz_angle(gate: &Gate) -> Option<f64> {
    match gate {
        Gate::T => Some(PI / 4.0),
        Gate::Tdg => Some(-PI / 4.0),
        Gate::Rz(p) => p.value().ok(),
        Gate::ZPow(p) => p.value().ok().map(|t| PI * t),
        _ => None,
    }
}

/// Result of [`estimate_amplitude`].
#[derive(Clone, Debug)]
pub struct AmplitudeEstimate {
    /// Monte-Carlo mean of the weighted branch amplitudes.
    pub amplitude: C64,
    /// Number of branches sampled.
    pub samples: u64,
    /// Product of the per-gate stabilizer extents; the estimator variance
    /// scales with this quantity.
    pub total_extent: f64,
}

/// Estimates `<bits|U|0...0>` for a Clifford+Rz-family circuit by
/// importance-sampled sum-over-Cliffords. Unbiased; standard error decays
/// as `sqrt(total_extent / samples)`.
///
/// Global-phase bookkeeping: T and Tdg are treated as `e^{i pi/8} R(pi/4)`
/// and its inverse, `ZPow(t)` as `e^{i pi t/2} R(pi t)`, so the returned
/// amplitude matches the circuit's literal gate matrices.
pub fn estimate_amplitude(
    circuit: &Circuit,
    bits: BitString,
    samples: u64,
    seed: u64,
) -> Result<AmplitudeEstimate, SimError> {
    let n = circuit.num_qubits().max(bits.len());
    if samples == 0 {
        return Err(SimError::Invalid("samples must be positive".into()));
    }
    let target = BitVec::from_u64(n, bits.as_u64());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = C64::ZERO;
    let mut total_extent = 1.0f64;
    let mut extent_known = false;

    for _ in 0..samples {
        let mut st = ChForm::zero(n);
        let mut weight = C64::ONE;
        let mut extent = 1.0f64;
        for op in circuit.all_operations() {
            let gate = match &op.kind {
                OpKind::Gate(g) => g,
                OpKind::Measure { .. } => continue,
                OpKind::Channel(c) => {
                    return Err(SimError::Unsupported(format!(
                        "channel {} in amplitude estimation",
                        c.name()
                    )))
                }
            };
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            if gate.has_stabilizer_effect() {
                apply_clifford_gate(&mut st, gate, &qs)?;
                continue;
            }
            let theta = rz_angle(gate).ok_or_else(|| {
                SimError::NotClifford(format!("{} in amplitude estimation", gate.name()))
            })?;
            // account for the R(theta)-vs-gate global phase
            let phase = match gate {
                Gate::T => C64::cis(PI / 8.0),
                Gate::Tdg => C64::cis(-PI / 8.0),
                Gate::ZPow(p) => C64::cis(PI * p.value()? / 2.0),
                _ => C64::ONE,
            };
            let (c_i, c_s) = rz_decomposition_coefficients(theta);
            let (w_i, w_s) = (c_i.abs(), c_s.abs());
            let l1 = w_i + w_s;
            extent *= l1 * l1;
            // importance-sample the branch; carry l1 * unit-phase weight
            if rng.gen::<f64>() * l1 < w_i {
                weight *= phase * c_i.scale(l1 / w_i.max(1e-300));
            } else {
                apply_clifford_gate(&mut st, &Gate::S, &qs)?;
                weight *= phase * c_s.scale(l1 / w_s.max(1e-300));
            }
        }
        if !extent_known {
            total_extent = extent;
            extent_known = true;
        }
        acc += weight * st.amplitude(&target);
    }
    Ok(AmplitudeEstimate {
        amplitude: acc / samples as f64,
        samples,
        total_extent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Operation, Qubit};
    use bgls_statevector::StateVector;

    fn exact_amplitude(circuit: &Circuit, n: usize, bits: BitString) -> C64 {
        use bgls_core::AmplitudeState;
        StateVector::from_circuit(circuit, n)
            .unwrap()
            .amplitude(bits)
    }

    #[test]
    fn pure_clifford_circuit_is_exact_with_one_sample() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        let b = BitString::from_u64(2, 0b11);
        let est = estimate_amplitude(&c, b, 1, 0).unwrap();
        assert!((est.total_extent - 1.0).abs() < 1e-12);
        assert!(est.amplitude.approx_eq(exact_amplitude(&c, 2, b), 1e-10));
    }

    #[test]
    fn single_t_circuit_converges_to_exact_amplitude() {
        // H T H |0>: amplitudes involve e^{i pi/4}
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        for target in [0u64, 1] {
            let b = BitString::from_u64(1, target);
            let exact = exact_amplitude(&c, 1, b);
            let est = estimate_amplitude(&c, b, 60_000, 3).unwrap();
            assert!(
                est.amplitude.approx_eq(exact, 0.02),
                "target {target}: {:?} vs exact {exact:?}",
                est.amplitude
            );
        }
    }

    #[test]
    fn multi_t_circuit_unbiased() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::Rz(0.6.into()), vec![Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::Tdg, vec![Qubit(0)]).unwrap());
        let b = BitString::from_u64(2, 0b01);
        let exact = exact_amplitude(&c, 2, b);
        let est = estimate_amplitude(&c, b, 120_000, 9).unwrap();
        assert!(est.total_extent > 1.0);
        assert!(
            est.amplitude.approx_eq(exact, 0.03),
            "{:?} vs exact {exact:?} (extent {})",
            est.amplitude,
            est.total_extent
        );
    }

    #[test]
    fn extent_grows_with_t_count() {
        let mut c1 = Circuit::new();
        c1.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        let mut c3 = Circuit::new();
        for _ in 0..3 {
            c3.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        }
        let b = BitString::zeros(1);
        let e1 = estimate_amplitude(&c1, b, 10, 0).unwrap().total_extent;
        let e3 = estimate_amplitude(&c3, b, 10, 0).unwrap().total_extent;
        assert!((e3 - e1.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn rejects_unsupported_content() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
        assert!(matches!(
            estimate_amplitude(&c, BitString::zeros(3), 10, 0),
            Err(SimError::NotClifford(_))
        ));
        assert!(matches!(
            estimate_amplitude(&Circuit::new(), BitString::zeros(1), 0, 0),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn zpow_phase_accounted_for() {
        // ZPow(0.25) = T exactly; the two spellings must agree
        let mut ct = Circuit::new();
        ct.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        ct.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        let mut cz = Circuit::new();
        cz.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        cz.push(Operation::gate(Gate::ZPow(0.25.into()), vec![Qubit(0)]).unwrap());
        let b = BitString::from_u64(1, 1);
        let at = estimate_amplitude(&ct, b, 40_000, 5).unwrap().amplitude;
        let az = estimate_amplitude(&cz, b, 40_000, 5).unwrap().amplitude;
        assert!(at.approx_eq(az, 0.02), "{at:?} vs {az:?}");
    }
}

//! # bgls-stabilizer
//!
//! Stabilizer-state backend for BGLS (paper Sec. 4.1–4.2): the CH-form
//! representation of Bravyi et al. 2019 with O(n^2) bitstring amplitudes,
//! a full Clifford gate dispatcher (including recognition of merged
//! single-qubit Clifford matrices), and the sum-over-Cliffords channel
//! (`act_on_near_clifford`) extending the backend to Clifford+Rz(theta)
//! circuits.
//!
//! ```
//! use bgls_circuit::{Circuit, Gate, Operation, Qubit};
//! use bgls_core::Simulator;
//! use bgls_stabilizer::ChForm;
//!
//! // a 40-qubit GHZ ladder: far beyond dense simulation, trivial here
//! let n = 40;
//! let mut circuit = Circuit::new();
//! circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! for i in 1..n as u32 {
//!     circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
//! }
//! let samples = Simulator::new(ChForm::zero(n))
//!     .with_seed(3)
//!     .sample_final_bitstrings(&circuit, 50)
//!     .unwrap();
//! assert!(samples
//!     .iter()
//!     .all(|b| b.as_u64() == 0 || b.as_u64() == (1u64 << n) - 1));
//! ```

#![warn(missing_docs)]

mod chform;
mod estimator;
mod near_clifford;
mod state;
mod tableau;

pub use chform::ChForm;
pub use estimator::{estimate_amplitude, AmplitudeEstimate};
pub use near_clifford::{
    act_on_near_clifford, near_clifford_simulator, rz_decomposition_coefficients,
    stabilizer_extent_rz,
};
pub use state::{
    apply_clifford_gate, compute_probability_stabilizer_state, decompose_clifford_1q, CliffordStep,
};
pub use tableau::{tableau_from_circuit, CliffordTableau, TableauSimulator};

//! The CH-form stabilizer state of Bravyi, Browne, Calpin, Campbell,
//! Gosset & Howard, "Simulation of quantum circuits by low-rank stabilizer
//! decompositions" (Quantum 3, 181, 2019) — the
//! `cirq.StabilizerChFormSimulationState` substitute (paper Sec. 4.1.2).
//!
//! Any stabilizer state is written `|psi> = omega * U_C * U_H * |s>` where
//! `U_C` is a *control-type* Clifford circuit (products of CNOT, CZ, S —
//! gates fixing `|0..0>`), `U_H` a layer of Hadamards (`v` marks which
//! qubits), `s` a basis state and `omega` a complex scalar. `U_C` is
//! tracked through its conjugation action:
//!
//! ```text
//! U_C^dag X_p U_C = i^{gamma_p} X^{F_p} Z^{M_p}     (row p of F, M)
//! U_C^dag Z_p U_C = Z^{G_p}                          (row p of G)
//! ```
//!
//! Bitstring amplitudes cost O(n^2 / 64) — independent of circuit depth —
//! which is what makes gate-by-gate sampling of Clifford circuits
//! polynomial (paper Fig. 3).

use bgls_core::SimError;
use bgls_linalg::{BitMatrix, BitVec, C64};
use std::f64::consts::FRAC_1_SQRT_2;

/// A stabilizer state in CH form.
#[derive(Clone, Debug)]
pub struct ChForm {
    n: usize,
    /// X-conjugation rows: `U_C^dag X_p U_C` has X-string `F_p`.
    f: BitMatrix,
    /// Z-conjugation rows: `U_C^dag Z_p U_C = Z^{G_p}`.
    g: BitMatrix,
    /// X-conjugation rows: Z-string part.
    m: BitMatrix,
    /// Phase exponents (`i^{gamma_p}`), stored mod 4.
    gamma: Vec<u8>,
    /// Hadamard layer indicator.
    v: BitVec,
    /// Basis state.
    s: BitVec,
    /// Global scalar.
    omega: C64,
}

impl ChForm {
    /// The all-zeros state `|0...0>` on `n` qubits.
    pub fn zero(n: usize) -> Self {
        ChForm {
            n,
            f: BitMatrix::identity(n),
            g: BitMatrix::identity(n),
            m: BitMatrix::zeros(n),
            gamma: vec![0; n],
            v: BitVec::zeros(n),
            s: BitVec::zeros(n),
            omega: C64::ONE,
        }
    }

    /// The computational basis state `|bits>`.
    pub fn basis(bits: &BitVec) -> Self {
        let mut st = ChForm::zero(bits.len());
        st.s = bits.clone();
        st
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The global scalar `omega`.
    pub fn omega(&self) -> C64 {
        self.omega
    }

    /// Multiplies the global scalar (used by the sum-over-Cliffords
    /// channel to carry decomposition coefficients).
    pub fn scale_omega(&mut self, k: C64) {
        self.omega *= k;
    }

    fn check(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                index: q,
                num_qubits: self.n,
            });
        }
        Ok(())
    }

    // ---- left-multiplication rules (gate applied to the state) --------

    /// Left Pauli Z on qubit `p`: `Z_p^dag X_p Z_p = -X_p`.
    pub fn apply_z(&mut self, p: usize) -> Result<(), SimError> {
        self.check(p)?;
        self.gamma[p] = (self.gamma[p] + 2) % 4;
        Ok(())
    }

    /// Left S on qubit `p`: `S^dag X S = i^{-1} X Z`.
    pub fn apply_s(&mut self, p: usize) -> Result<(), SimError> {
        self.check(p)?;
        let gp = self.g.row(p).clone();
        self.m.xor_into_row(p, &gp);
        self.gamma[p] = (self.gamma[p] + 3) % 4;
        Ok(())
    }

    /// Left S^dagger on qubit `p`.
    pub fn apply_sdg(&mut self, p: usize) -> Result<(), SimError> {
        self.check(p)?;
        let gp = self.g.row(p).clone();
        self.m.xor_into_row(p, &gp);
        self.gamma[p] = (self.gamma[p] + 1) % 4;
        Ok(())
    }

    /// Left CZ on qubits `p, q`: `CZ^dag X_p CZ = X_p Z_q`.
    pub fn apply_cz(&mut self, p: usize, q: usize) -> Result<(), SimError> {
        self.check(p)?;
        self.check(q)?;
        if p == q {
            return Err(SimError::Invalid("CZ with identical qubits".into()));
        }
        let gq = self.g.row(q).clone();
        self.m.xor_into_row(p, &gq);
        let gp = self.g.row(p).clone();
        self.m.xor_into_row(q, &gp);
        Ok(())
    }

    /// Left CNOT with control `p`, target `q`:
    /// `CX^dag X_p CX = X_p X_q`, `CX^dag Z_q CX = Z_p Z_q`.
    pub fn apply_cnot(&mut self, p: usize, q: usize) -> Result<(), SimError> {
        self.check(p)?;
        self.check(q)?;
        if p == q {
            return Err(SimError::Invalid("CNOT with identical qubits".into()));
        }
        // gamma_p += gamma_q + 2 * |M_p & F_q| (Z-past-X reordering sign)
        let cross = self.m.row(p).dot(self.f.row(q)) as u8;
        self.gamma[p] = (self.gamma[p] + self.gamma[q] + 2 * cross) % 4;
        let fq = self.f.row(q).clone();
        self.f.xor_into_row(p, &fq);
        let mq = self.m.row(q).clone();
        self.m.xor_into_row(p, &mq);
        let gp = self.g.row(p).clone();
        self.g.xor_into_row(q, &gp);
        Ok(())
    }

    /// Left Pauli X on qubit `p`: pushes `U_C^dag X_p U_C` through `U_H`
    /// onto `(s, omega)`.
    pub fn apply_x(&mut self, p: usize) -> Result<(), SimError> {
        self.check(p)?;
        let a = self.f.row(p).clone(); // X-string
        let b = self.m.row(p).clone(); // Z-string
        self.apply_pauli_string(&a, &b, self.gamma[p]);
        Ok(())
    }

    /// Left Pauli Y on qubit `p`: `Y = i X Z`.
    pub fn apply_y(&mut self, p: usize) -> Result<(), SimError> {
        self.apply_z(p)?;
        self.apply_x(p)?;
        self.omega *= C64::I;
        Ok(())
    }

    /// Applies `i^{phase} X^a Z^b` (a Pauli string already conjugated
    /// through `U_C`) to `U_H |s>`, updating `s` and `omega`.
    fn apply_pauli_string(&mut self, a: &BitVec, b: &BitVec, phase: u8) {
        // Push through H^v: on v=1 qubits X<->Z with sign (-1)^{a_j b_j}.
        let a2 = a.and(&self.v.not()).xor(&b.and(&self.v));
        let b2 = b.and(&self.v.not()).xor(&a.and(&self.v));
        let mut sign = a.and(b).and(&self.v).parity();
        // Apply X^{a2} Z^{b2} to |s>: phase (-1)^{b2 . s}, then s ^= a2.
        sign ^= b2.dot(&self.s);
        self.omega *= C64::i_pow(phase as i64);
        if sign {
            self.omega = -self.omega;
        }
        self.s.xor_assign(&a2);
    }

    /// Left Hadamard on qubit `p` — the Proposition-4 superposition update.
    pub fn apply_h(&mut self, p: usize) -> Result<(), SimError> {
        self.check(p)?;
        // H_p = (X_p + Z_p)/sqrt(2).
        // X term: i^{gamma_p} X^{F_p} Z^{M_p} pushed through U_H:
        //   target u = s ^ [(F_p & ~v) | (M_p & v)],
        //   sign beta = |F_p & M_p & v| + |((M_p & ~v) | (F_p & v)) . s|.
        let fp = self.f.row(p);
        let mp = self.m.row(p);
        let not_v = self.v.not();
        let ax = fp.and(&not_v).xor(&mp.and(&self.v));
        let bx = mp.and(&not_v).xor(&fp.and(&self.v));
        let u = self.s.xor(&ax);
        let beta = (fp.and(mp).and(&self.v).parity() as u8 + bx.dot(&self.s) as u8) % 2;
        // Z term: Z^{G_p} pushed through U_H:
        //   target t = s ^ (G_p & v), sign alpha = |G_p & ~v & s|.
        let gp = self.g.row(p);
        let t = self.s.xor(&gp.and(&self.v));
        let alpha = gp.and(&not_v).dot(&self.s) as u8;
        // H_p|psi> = omega (-1)^alpha U_C U_H (|t> + i^delta |u>)/sqrt(2)
        let delta = (self.gamma[p] + 2 * (alpha + beta)) % 4;
        if alpha == 1 {
            self.omega = -self.omega;
        }
        self.omega *= C64::real(FRAC_1_SQRT_2);
        self.update_sum(t, u, delta)
    }

    // ---- right-multiplication rules (U_C <- U_C W) ---------------------

    /// Right CNOT (control `q`, target `r`): conjugates every tracked
    /// Pauli: `X_q -> X_q X_r`, `Z_r -> Z_q Z_r`.
    fn cnot_right(&mut self, q: usize, r: usize) {
        debug_assert_ne!(q, r);
        self.f.xor_col(r, q);
        self.m.xor_col(q, r);
        self.g.xor_col(q, r);
    }

    /// Right CZ on `q, r`: `X_q -> X_q Z_r`, `X_r -> X_r Z_q`, with sign
    /// `(-1)^{F_pq F_pr}` per row from Z-past-X normal ordering.
    fn cz_right(&mut self, q: usize, r: usize) {
        debug_assert_ne!(q, r);
        for p in 0..self.n {
            let fq = self.f.get(p, q);
            let fr = self.f.get(p, r);
            if fq {
                self.m.set(p, r, self.m.get(p, r) ^ true);
            }
            if fr {
                self.m.set(p, q, self.m.get(p, q) ^ true);
            }
            if fq && fr {
                self.gamma[p] = (self.gamma[p] + 2) % 4;
            }
        }
    }

    /// Right S on `q`: `X_q -> i^{-1} X_q Z_q`.
    fn s_right(&mut self, q: usize) {
        for p in 0..self.n {
            if self.f.get(p, q) {
                self.m.set(p, q, self.m.get(p, q) ^ true);
                self.gamma[p] = (self.gamma[p] + 3) % 4;
            }
        }
    }

    /// Right S^dagger on `q`: `X_q -> i X_q Z_q`.
    fn sdg_right(&mut self, q: usize) {
        for p in 0..self.n {
            if self.f.get(p, q) {
                self.m.set(p, q, self.m.get(p, q) ^ true);
                self.gamma[p] = (self.gamma[p] + 1) % 4;
            }
        }
    }

    /// Rewrites `omega * U_C * U_H * (|t> + i^delta |u>)` back into CH form
    /// (Proposition 4 of Bravyi et al. 2019). The incoming scalar `omega`
    /// must already include all normalization.
    fn update_sum(&mut self, t: BitVec, u: BitVec, delta: u8) -> Result<(), SimError> {
        let d = t.xor(&u);
        if d.is_zero() {
            // (1 + i^delta) |t>
            let factor = C64::ONE + C64::i_pow(delta as i64);
            if factor == C64::ZERO {
                return Err(SimError::Invalid(
                    "CH-form update annihilated the state (internal invariant violated)".into(),
                ));
            }
            self.s = t;
            self.omega *= factor;
            return Ok(());
        }

        // Every t != u branch below factors the pair as
        // sqrt(2) * (unit phase) * W_C * U_H' |s'>; absorb the sqrt(2) here
        // (it cancels the 1/sqrt(2) the caller already applied).
        self.omega *= C64::real(std::f64::consts::SQRT_2);

        // Difference qubits split by Hadamard status.
        let set0: Vec<usize> = d.iter_ones().filter(|&j| !self.v.get(j)).collect();
        let set1: Vec<usize> = d.iter_ones().filter(|&j| self.v.get(j)).collect();

        // Choose the pivot and right-multiply W so that, pushed through
        // U_H, W flips exactly the D\{q} bits of kets whose q-bit is 1.
        let q = if !set0.is_empty() { set0[0] } else { set1[0] };
        if !set0.is_empty() {
            for &j in &set0 {
                if j != q {
                    self.cnot_right(q, j);
                }
            }
            for &j in &set1 {
                self.cz_right(q, j);
            }
        } else {
            for &j in &set1 {
                if j != q {
                    self.cnot_right(j, q);
                }
            }
        }

        // The pushed-through W maps |y> to |y ^ y_q * (D \ {q})>, so the
        // q=0 ket is fixed and the q=1 ket becomes (q=0 ket) ^ e_q. Keep
        // the q=0 ket as the new basis string; if that swaps t and u,
        // rewrite |t> + i^delta |u> = i^delta (|u> + i^{-delta} |t>).
        let (y0, delta_eff) = if !t.get(q) {
            (t, delta)
        } else {
            self.omega *= C64::i_pow(delta as i64);
            (u, (4 - delta) % 4)
        };
        let mut s_new = y0;
        debug_assert!(!s_new.get(q));

        // Resolve the single-qubit superposition |0> + i^delta_eff |1> at q
        // (norm sqrt(2), already absorbed into omega above).
        if !self.v.get(q) {
            // |0> + i^d |1> = sqrt(2) (S^{d odd}) H |d >= 2>
            if delta_eff % 2 == 1 {
                self.s_right(q);
            }
            self.v.set(q, true);
            s_new.set(q, delta_eff == 2 || delta_eff == 3);
        } else {
            match delta_eff {
                0 => {
                    // H(|0> + |1>) = sqrt(2) |0>
                    self.v.set(q, false);
                    s_new.set(q, false);
                }
                2 => {
                    // H(|0> - |1>) = sqrt(2) |1>
                    self.v.set(q, false);
                    s_new.set(q, true);
                }
                1 => {
                    // H(|0> + i|1>) = sqrt(2) e^{i pi/4} Sdg H |0>
                    self.sdg_right(q);
                    self.omega *= C64::new(FRAC_1_SQRT_2, FRAC_1_SQRT_2);
                    s_new.set(q, false);
                }
                _ => {
                    // H(|0> - i|1>) = sqrt(2) e^{-i pi/4} S H |0>
                    self.s_right(q);
                    self.omega *= C64::new(FRAC_1_SQRT_2, -FRAC_1_SQRT_2);
                    s_new.set(q, false);
                }
            }
        }
        self.s = s_new;
        Ok(())
    }

    // ---- amplitudes ----------------------------------------------------

    /// The amplitude `<x|psi>`, in O(n^2 / 64) time.
    pub fn amplitude(&self, x: &BitVec) -> C64 {
        assert_eq!(x.len(), self.n, "bitstring width mismatch");
        // U_C^dag |x> = i^mu |x F| by merging the conjugated X_p strings
        // (ascending p), collecting Z-past-X reordering signs.
        let mut mu: u8 = 0; // mod 4
        let mut xf = BitVec::zeros(self.n);
        let mut za = BitVec::zeros(self.n);
        for p in x.iter_ones() {
            self.conjugation_step(p, &mut mu, &mut xf, &mut za);
        }
        self.amplitude_tail(mu, &xf)
    }

    /// Merges the conjugated `X_p` string into the running
    /// `U_C^dag |x> = i^mu |xF|` state (one set bit of `x`).
    #[inline]
    fn conjugation_step(&self, p: usize, mu: &mut u8, xf: &mut BitVec, za: &mut BitVec) {
        *mu = (*mu + self.gamma[p]) % 4;
        if za.dot(self.f.row(p)) {
            *mu = (*mu + 2) % 4;
        }
        xf.xor_assign(self.f.row(p));
        za.xor_assign(self.m.row(p));
    }

    /// Finishes an amplitude from the merged conjugation state:
    /// `<x|psi> = omega * i^{-mu} <xF| U_H |s>` with
    /// `<xF|U_H|s> = 2^{-|v|/2} (-1)^{|xF & s & v|} [xF agrees with s off v]`.
    fn amplitude_tail(&self, mu: u8, xf: &BitVec) -> C64 {
        let not_v = self.v.not();
        if xf.and(&not_v) != self.s.and(&not_v) {
            return C64::ZERO;
        }
        let mut amp = self.omega * C64::i_pow(-(mu as i64));
        if xf.and(&self.s).and(&self.v).parity() {
            amp = -amp;
        }
        let hw = self.v.count_ones();
        amp * C64::real(FRAC_1_SQRT_2.powi(hw as i32))
    }

    /// Born probability `|<x|psi>|^2`.
    pub fn probability_of(&self, x: &BitVec) -> f64 {
        self.amplitude(x).norm_sqr()
    }

    /// Born probabilities of a whole candidate set, sharing the
    /// `U_C^dag` Pauli-conjugation work across candidates.
    ///
    /// Candidates from the sampler differ only on the support bits of
    /// the current gate, so the running `(mu, xF, Z-accumulator)` merge
    /// state is identical until the first disagreeing bit position. A
    /// trie over bit positions advances every group of agreeing
    /// candidates once and forks only where the set splits, so each
    /// shared prefix of conjugated `X_p` rows is merged once instead of
    /// once per candidate, and each leaf's amplitude tail is computed
    /// once per distinct bitstring.
    ///
    /// Every candidate passes through the exact
    /// `conjugation_step` / `amplitude_tail`
    /// sequence a scalar [`ChForm::probability_of`] call performs (the
    /// merge is integer/boolean arithmetic, the tail a fixed float
    /// expression), so results are bit-identical to scalar calls.
    pub fn probabilities_batch_of(&self, candidates: &[BitVec]) -> Vec<f64> {
        let mut out = vec![0.0; candidates.len()];
        if candidates.is_empty() {
            return out;
        }
        for c in candidates {
            assert_eq!(c.len(), self.n, "bitstring width mismatch");
        }
        struct Node {
            p: usize,
            mu: u8,
            xf: BitVec,
            za: BitVec,
            idxs: Vec<usize>,
        }
        let mut stack = vec![Node {
            p: 0,
            mu: 0,
            xf: BitVec::zeros(self.n),
            za: BitVec::zeros(self.n),
            idxs: (0..candidates.len()).collect(),
        }];
        while let Some(mut node) = stack.pop() {
            let mut p = node.p;
            // Advance through positions the whole group agrees on.
            while p < self.n {
                let first = candidates[node.idxs[0]].get(p);
                if !node.idxs.iter().all(|&c| candidates[c].get(p) == first) {
                    break;
                }
                if first {
                    self.conjugation_step(p, &mut node.mu, &mut node.xf, &mut node.za);
                }
                p += 1;
            }
            if p == self.n {
                let prob = self.amplitude_tail(node.mu, &node.xf).norm_sqr();
                for &c in &node.idxs {
                    out[c] = prob;
                }
                continue;
            }
            // Fork on bit `p`.
            let (ones, zeros): (Vec<usize>, Vec<usize>) =
                node.idxs.into_iter().partition(|&c| candidates[c].get(p));
            let mut mu1 = node.mu;
            let mut xf1 = node.xf.clone();
            let mut za1 = node.za.clone();
            self.conjugation_step(p, &mut mu1, &mut xf1, &mut za1);
            stack.push(Node {
                p: p + 1,
                mu: node.mu,
                xf: node.xf,
                za: node.za,
                idxs: zeros,
            });
            stack.push(Node {
                p: p + 1,
                mu: mu1,
                xf: xf1,
                za: za1,
                idxs: ones,
            });
        }
        out
    }

    /// Exact expectation `<psi| i^{phase} X^x Z^z |psi>` of a Pauli
    /// operator given in symplectic normal form, in `O(n^2 / 64)` time.
    ///
    /// The operator is conjugated through `U_C` exactly as in
    /// [`ChForm::amplitude`] — the X part merges conjugated `X_p` rows
    /// via the same `conjugation_step`, the Z part XORs `G` rows — then
    /// pushed through the Hadamard layer `H^v` and evaluated on the
    /// basis state `|s>`. The result is `|omega|^2 i^k (+-1)` when the
    /// pushed-through operator is Z-only (diagonal), and exactly zero
    /// otherwise — the "Pauli is (not) in the stabilizer group"
    /// dichotomy, computed without touching amplitudes.
    pub fn pauli_expectation(&self, x: &BitVec, z: &BitVec, phase: u8) -> C64 {
        assert_eq!(x.len(), self.n, "X-mask width mismatch");
        assert_eq!(z.len(), self.n, "Z-mask width mismatch");
        // U_C^dag X^x U_C = i^mu X^xf Z^za (ascending-p row merge).
        let mut mu: u8 = 0;
        let mut xf = BitVec::zeros(self.n);
        let mut za = BitVec::zeros(self.n);
        for p in x.iter_ones() {
            self.conjugation_step(p, &mut mu, &mut xf, &mut za);
        }
        // U_C^dag Z^z U_C = Z^zb; Z factors commute freely.
        let mut zb = BitVec::zeros(self.n);
        for p in z.iter_ones() {
            zb.xor_assign(self.g.row(p));
        }
        let d = za.xor(&zb);
        // Push X^xf Z^d through H^v: X<->Z on v qubits, sign (-1)^{xf.d.v}.
        let not_v = self.v.not();
        let x2 = xf.and(&not_v).xor(&d.and(&self.v));
        let z2 = d.and(&not_v).xor(&xf.and(&self.v));
        if !x2.is_zero() {
            // A surviving X component flips |s>, so <s|..|s> vanishes.
            return C64::ZERO;
        }
        let mut sign = xf.and(&d).and(&self.v).parity();
        // <s| Z^z2 |s> = (-1)^{z2 . s}
        sign ^= z2.dot(&self.s);
        let mut val = C64::i_pow((phase + mu) as i64) * C64::real(self.omega.norm_sqr());
        if sign {
            val = -val;
        }
        val
    }

    /// Dense ket (verification only; exponential in `n`).
    pub fn ket(&self) -> Vec<C64> {
        assert!(self.n <= 20, "ket() limited to 20 qubits");
        (0..1u64 << self.n)
            .map(|x| self.amplitude(&BitVec::from_u64(self.n, x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(n: usize, x: u64) -> BitVec {
        BitVec::from_u64(n, x)
    }

    fn assert_state(st: &ChForm, expect: &[(u64, C64)], tol: f64) {
        let ket = st.ket();
        let mut covered = vec![false; ket.len()];
        for &(x, a) in expect {
            assert!(
                ket[x as usize].approx_eq(a, tol),
                "amplitude at {x:#b}: got {:?}, want {a:?}",
                ket[x as usize]
            );
            covered[x as usize] = true;
        }
        for (x, amp) in ket.iter().enumerate() {
            if !covered[x] {
                assert!(
                    amp.approx_eq(C64::ZERO, tol),
                    "expected zero amplitude at {x:#b}, got {amp:?}"
                );
            }
        }
    }

    const R: f64 = FRAC_1_SQRT_2;

    #[test]
    fn zero_state_amplitudes() {
        let st = ChForm::zero(2);
        assert_state(&st, &[(0, C64::ONE)], 1e-12);
    }

    #[test]
    fn basis_state_amplitudes() {
        let st = ChForm::basis(&bits(3, 0b101));
        assert_state(&st, &[(0b101, C64::ONE)], 1e-12);
    }

    #[test]
    fn x_flips_basis() {
        let mut st = ChForm::zero(2);
        st.apply_x(1).unwrap();
        assert_state(&st, &[(0b10, C64::ONE)], 1e-12);
    }

    #[test]
    fn hadamard_on_zero() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        assert_state(&st, &[(0, C64::real(R)), (1, C64::real(R))], 1e-12);
    }

    #[test]
    fn hadamard_on_one_gives_minus() {
        let mut st = ChForm::zero(1);
        st.apply_x(0).unwrap();
        st.apply_h(0).unwrap();
        assert_state(&st, &[(0, C64::real(R)), (1, C64::real(-R))], 1e-12);
    }

    #[test]
    fn double_hadamard_is_identity() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        st.apply_h(0).unwrap();
        assert_state(&st, &[(0, C64::ONE)], 1e-12);
    }

    #[test]
    fn s_gate_phases_one_component() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        st.apply_s(0).unwrap();
        assert_state(&st, &[(0, C64::real(R)), (1, C64::new(0.0, R))], 1e-12);
    }

    #[test]
    fn s_four_times_is_identity() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        for _ in 0..4 {
            st.apply_s(0).unwrap();
        }
        assert_state(&st, &[(0, C64::real(R)), (1, C64::real(R))], 1e-12);
    }

    #[test]
    fn sdg_inverts_s() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        st.apply_s(0).unwrap();
        st.apply_sdg(0).unwrap();
        assert_state(&st, &[(0, C64::real(R)), (1, C64::real(R))], 1e-12);
    }

    #[test]
    fn ghz_state() {
        let mut st = ChForm::zero(3);
        st.apply_h(0).unwrap();
        st.apply_cnot(0, 1).unwrap();
        st.apply_cnot(1, 2).unwrap();
        assert_state(&st, &[(0b000, C64::real(R)), (0b111, C64::real(R))], 1e-12);
    }

    #[test]
    fn cz_phases_correctly() {
        let mut st = ChForm::zero(2);
        st.apply_h(0).unwrap();
        st.apply_h(1).unwrap();
        st.apply_cz(0, 1).unwrap();
        assert_state(
            &st,
            &[
                (0b00, C64::real(0.5)),
                (0b01, C64::real(0.5)),
                (0b10, C64::real(0.5)),
                (0b11, C64::real(-0.5)),
            ],
            1e-12,
        );
    }

    #[test]
    fn y_gate_on_zero() {
        let mut st = ChForm::zero(1);
        st.apply_y(0).unwrap();
        // Y|0> = i|1>
        assert_state(&st, &[(1, C64::I)], 1e-12);
    }

    #[test]
    fn z_after_h_flips_sign() {
        let mut st = ChForm::zero(1);
        st.apply_h(0).unwrap();
        st.apply_z(0).unwrap();
        assert_state(&st, &[(0, C64::real(R)), (1, C64::real(-R))], 1e-12);
    }

    #[test]
    fn probability_normalization_random_walk() {
        // Long Clifford sequence; total probability must stay 1.
        let mut st = ChForm::zero(4);
        let seq: [(usize, usize, u8); 12] = [
            (0, 0, 0),
            (1, 0, 1),
            (0, 1, 0),
            (2, 3, 2),
            (1, 2, 1),
            (0, 3, 0),
            (3, 1, 2),
            (1, 1, 1),
            (0, 2, 0),
            (2, 0, 2),
            (0, 0, 0),
            (3, 2, 3),
        ];
        for (a, b, kind) in seq {
            match kind {
                0 => st.apply_h(a).unwrap(),
                1 => st.apply_s(a).unwrap(),
                2 => st.apply_cnot(a, b).unwrap(),
                _ => st.apply_cz(a, b).unwrap(),
            }
        }
        let total: f64 = st.ket().iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-10, "norm drifted: {total}");
    }

    #[test]
    fn batched_probabilities_are_bit_identical_to_scalar() {
        // Scrambled Clifford state (same walk as the normalization test).
        let mut st = ChForm::zero(6);
        let seq: [(usize, usize, u8); 14] = [
            (0, 0, 0),
            (1, 0, 1),
            (0, 1, 2),
            (2, 3, 2),
            (1, 2, 1),
            (4, 3, 0),
            (3, 1, 2),
            (5, 1, 1),
            (0, 2, 3),
            (2, 0, 2),
            (5, 0, 0),
            (3, 2, 3),
            (4, 0, 1),
            (1, 4, 2),
        ];
        for (a, b, kind) in seq {
            match kind {
                0 => st.apply_h(a).unwrap(),
                1 => st.apply_s(a).unwrap(),
                2 => st.apply_cnot(a, b).unwrap(),
                _ => st.apply_cz(a, b).unwrap(),
            }
        }
        // Sampler-shaped sets (shared base, all assignments of a small
        // support) plus a fully mixed set.
        let base = 0b101100u64;
        let mut sets: Vec<Vec<BitVec>> = Vec::new();
        for support in [vec![2usize], vec![0, 4], vec![1, 3, 5]] {
            let mut cands = Vec::new();
            for assign in 0..1u64 << support.len() {
                let mut x = base;
                for (t, &q) in support.iter().enumerate() {
                    x = (x & !(1 << q)) | (((assign >> t) & 1) << q);
                }
                cands.push(bits(6, x));
            }
            sets.push(cands);
        }
        sets.push((0..13).map(|t| bits(6, (t * 37 + 5) % 64)).collect());
        for cands in sets {
            let batched = st.probabilities_batch_of(&cands);
            for (c, p) in cands.iter().zip(&batched) {
                let scalar = st.probability_of(c);
                assert!(
                    p.to_bits() == scalar.to_bits(),
                    "batched {p} != scalar {scalar} for {c:?}"
                );
            }
        }
        assert!(st.probabilities_batch_of(&[]).is_empty());
    }

    #[test]
    fn pauli_expectation_matches_dense_ket() {
        // i^phase X^x Z^z applied to a dense ket, brute force.
        fn dense_expect(ket: &[C64], x: u64, z: u64, phase: u8) -> C64 {
            let mut acc = C64::ZERO;
            for (b, &amp) in ket.iter().enumerate() {
                let mut term = ket[b ^ x as usize].conj() * amp;
                if ((b as u64) & z).count_ones() % 2 == 1 {
                    term = -term;
                }
                acc += term;
            }
            acc * C64::i_pow(phase as i64)
        }
        // Scrambled Clifford state (same walk as the batched test).
        let mut st = ChForm::zero(6);
        let seq: [(usize, usize, u8); 14] = [
            (0, 0, 0),
            (1, 0, 1),
            (0, 1, 2),
            (2, 3, 2),
            (1, 2, 1),
            (4, 3, 0),
            (3, 1, 2),
            (5, 1, 1),
            (0, 2, 3),
            (2, 0, 2),
            (5, 0, 0),
            (3, 2, 3),
            (4, 0, 1),
            (1, 4, 2),
        ];
        for (a, b, kind) in seq {
            match kind {
                0 => st.apply_h(a).unwrap(),
                1 => st.apply_s(a).unwrap(),
                2 => st.apply_cnot(a, b).unwrap(),
                _ => st.apply_cz(a, b).unwrap(),
            }
        }
        let ket = st.ket();
        // (x, z, n_y): Z-strings, X-strings, Y factors (bit in both
        // masks, one i each), and mixed strings.
        let cases: [(u64, u64, u8); 8] = [
            (0, 0, 0),
            (0, 0b000101, 0),
            (0b001100, 0, 0),
            (0b000010, 0b000010, 1),
            (0b110010, 0b011010, 1),
            (0b000111, 0b111000, 0),
            (0b101101, 0b101101, 3),
            (0b111111, 0b111111, 2),
        ];
        for (x, z, ny) in cases {
            let got = st.pauli_expectation(&BitVec::from_u64(6, x), &BitVec::from_u64(6, z), ny);
            let want = dense_expect(&ket, x, z, ny);
            assert!(
                got.approx_eq(want, 1e-10),
                "x={x:b} z={z:b} ny={ny}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn duplicate_qubit_rejected() {
        let mut st = ChForm::zero(2);
        assert!(st.apply_cnot(1, 1).is_err());
        assert!(st.apply_cz(0, 0).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut st = ChForm::zero(2);
        assert!(matches!(
            st.apply_h(2),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }
}

//! The sum-over-Cliffords technique for near-Clifford circuits
//! (paper Sec. 4.2): `bgls.act_on_near_clifford`.
//!
//! Any diagonal rotation `R(theta) = exp(-i Z theta / 2)` decomposes over
//! Clifford gates as
//!
//! ```text
//! R(theta) = (cos(theta/2) - sin(theta/2)) I
//!          + sqrt(2) e^{-i pi/4} sin(theta/2) S
//! ```
//!
//! (Bravyi et al. 2019, the optimal two-term decomposition). The channel
//! checks `has_stabilizer_effect` per gate; Clifford gates apply exactly,
//! and each `Rz`-family gate stochastically substitutes `I` or `S` with
//! probability proportional to its coefficient magnitude. A circuit with
//! `N` such gates spans `2^N` stabilizer terms; one sample explores a
//! single branch, which is why overlap decays with the T count (Fig. 5).

use crate::chform::ChForm;
use crate::state::{apply_clifford_gate, compute_probability_stabilizer_state};
use bgls_circuit::{Gate, OpKind, Operation};
use bgls_core::{ApplyFn, ProbFn, SimError, Simulator};
use bgls_linalg::C64;
use rand::{Rng, RngCore};
use std::f64::consts::{FRAC_PI_4, PI};
use std::sync::Arc;

/// Coefficients `(c_I, c_S)` of the sum-over-Cliffords decomposition of
/// `R(theta) = exp(-i Z theta/2)`.
pub fn rz_decomposition_coefficients(theta: f64) -> (C64, C64) {
    let half = theta / 2.0;
    let c_i = C64::real(half.cos() - half.sin());
    let c_s = C64::from_polar(2f64.sqrt() * half.sin(), -FRAC_PI_4);
    (c_i, c_s)
}

/// The stabilizer extent of `R(theta)`: the squared 1-norm of the optimal
/// decomposition, `zeta = (|c_I| + |c_S|)^2`. A heuristic for "how
/// non-Clifford" the gate is; 1 exactly at Clifford angles.
pub fn stabilizer_extent_rz(theta: f64) -> f64 {
    let (c_i, c_s) = rz_decomposition_coefficients(theta);
    let l1 = c_i.abs() + c_s.abs();
    l1 * l1
}

/// Extracts the `R(theta)` angle from an Rz-family gate, if it is one.
/// T and Tdg are `R(+-pi/4)` up to global phase; `ZPow(t)` is `R(pi t)`.
fn rz_angle(gate: &Gate) -> Option<f64> {
    match gate {
        Gate::T => Some(PI / 4.0),
        Gate::Tdg => Some(-PI / 4.0),
        Gate::Rz(p) => p.value().ok(),
        Gate::ZPow(p) => p.value().ok().map(|t| PI * t),
        _ => None,
    }
}

/// Applies one operation to a CH-form state, extending the Clifford
/// dispatcher with the stochastic sum-over-Cliffords substitution for
/// `Rz(theta)`-family gates: with probability `|c_I| / (|c_I| + |c_S|)`
/// the gate is replaced by `I`, otherwise by `S` (paper Sec. 4.2.2).
pub fn act_on_near_clifford(
    state: &mut ChForm,
    op: &Operation,
    rng: &mut dyn RngCore,
) -> Result<(), SimError> {
    let gate = match &op.kind {
        OpKind::Gate(g) => g,
        OpKind::Measure { .. } => return Ok(()),
        OpKind::Channel(c) => {
            return Err(SimError::Unsupported(format!(
                "channel {} on stabilizer states",
                c.name()
            )))
        }
    };
    let qubits: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
    if gate.has_stabilizer_effect() {
        return apply_clifford_gate(state, gate, &qubits);
    }
    let theta = rz_angle(gate).ok_or_else(|| {
        SimError::NotClifford(format!(
            "{} (only Clifford + Rz-family gates supported by sum-over-Cliffords)",
            gate.name()
        ))
    })?;
    let (c_i, c_s) = rz_decomposition_coefficients(theta);
    let (w_i, w_s) = (c_i.abs(), c_s.abs());
    let total = w_i + w_s;
    if rng.gen::<f64>() * total < w_i {
        // substitute I: no state change
        Ok(())
    } else {
        state.apply_s(qubits[0])
    }
}

/// Builds a ready-to-use near-Clifford BGLS simulator on `n` qubits: a
/// CH-form initial state, the [`act_on_near_clifford`] apply hook (marked
/// stochastic, so every repetition re-runs the circuit and explores its
/// own branch of the `2^N`-term expansion), and the stabilizer
/// probability hook.
pub fn near_clifford_simulator(n: usize) -> Simulator<ChForm> {
    let apply: ApplyFn<ChForm> = Arc::new(act_on_near_clifford);
    let prob: ProbFn<ChForm> = Arc::new(compute_probability_stabilizer_state);
    Simulator::with_hooks(ChForm::zero(n), apply, prob, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::Qubit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decomposition_reconstructs_rz() {
        use bgls_linalg::Matrix;
        for theta in [0.1f64, 0.9, PI / 4.0, 2.5, -1.2] {
            let (c_i, c_s) = rz_decomposition_coefficients(theta);
            let i2 = Matrix::identity(2);
            let s = Gate::S.unitary().unwrap();
            let sum = &i2.scale(c_i) + &s.scale(c_s);
            let rz = Gate::Rz(theta.into()).unitary().unwrap();
            assert!(sum.approx_eq(&rz, 1e-12), "theta = {theta}");
        }
    }

    #[test]
    fn extent_is_one_at_clifford_angles() {
        for theta in [0.0, PI / 2.0] {
            assert!((stabilizer_extent_rz(theta) - 1.0).abs() < 1e-12);
        }
        // maximal around theta = pi/4 family (T gate): extent > 1
        assert!(stabilizer_extent_rz(PI / 4.0) > 1.0);
    }

    #[test]
    fn t_gate_extent_matches_literature() {
        // zeta(T) = (cos(pi/8)... ) known value ~ 1.17157 = 4 - 2 sqrt(2)...
        // compute directly: |c_I| + |c_S| at theta = pi/4
        let z = stabilizer_extent_rz(PI / 4.0);
        // |c_I| = cos(pi/8) - sin(pi/8), |c_S| = sqrt(2) sin(pi/8)
        let expect = {
            let l1 = (PI / 8.0).cos() - (PI / 8.0).sin() + 2f64.sqrt() * (PI / 8.0).sin();
            l1 * l1
        };
        assert!((z - expect).abs() < 1e-12);
    }

    #[test]
    fn clifford_gates_apply_exactly() {
        let mut st = ChForm::zero(2);
        let mut rng = StdRng::seed_from_u64(0);
        let ops = [
            Operation::gate(Gate::H, vec![Qubit(0)]).unwrap(),
            Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap(),
        ];
        for op in &ops {
            act_on_near_clifford(&mut st, op, &mut rng).unwrap();
        }
        let ket = st.ket();
        assert!((ket[0].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((ket[3].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_gate_substitutes_i_or_s() {
        let op = Operation::gate(Gate::T, vec![Qubit(0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut s_count = 0;
        let trials = 5000;
        for _ in 0..trials {
            let mut st = ChForm::zero(1);
            st.apply_h(0).unwrap();
            act_on_near_clifford(&mut st, &op, &mut rng).unwrap();
            // if S was chosen, |1> amplitude is imaginary
            let ket = st.ket();
            if ket[1].im.abs() > 1e-9 {
                s_count += 1;
            }
        }
        let (c_i, c_s) = rz_decomposition_coefficients(PI / 4.0);
        let p_s = c_s.abs() / (c_i.abs() + c_s.abs());
        let freq = s_count as f64 / trials as f64;
        assert!((freq - p_s).abs() < 0.03, "freq {freq} vs p_s {p_s}");
    }

    #[test]
    fn unsupported_gate_errors() {
        let op = Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap();
        let mut st = ChForm::zero(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            act_on_near_clifford(&mut st, &op, &mut rng),
            Err(SimError::NotClifford(_))
        ));
    }

    #[test]
    fn channels_unsupported_on_stabilizer_states() {
        use bgls_circuit::Channel;
        let op = Operation::channel(Channel::bit_flip(0.5).unwrap(), vec![Qubit(0)]).unwrap();
        let mut st = ChForm::zero(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            act_on_near_clifford(&mut st, &op, &mut rng),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn near_clifford_simulator_runs_clifford_t_circuit() {
        use bgls_circuit::Circuit;
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let sim = near_clifford_simulator(1).with_seed(3);
        let r = sim.run(&c, 500).unwrap();
        let h = r.histogram("m").unwrap();
        assert_eq!(h.total(), 500);
        // both outcomes occur (the branches differ), dominated by 0
        assert!(h.count_value(0) > h.count_value(1));
    }
}

//! # bgls-suite
//!
//! Umbrella crate for the BGLS reproduction workspace: re-exports every
//! sub-crate so the examples and integration tests can use a single
//! dependency. See `README.md` for the tour and crate-to-paper map.
//!
//! The [`backend`] module (and its re-exported [`BackendKind`] /
//! [`AnyState`] / [`SimulatorExt`]) is the runtime dispatch layer: pick a
//! state representation from a string or config value instead of a
//! compile-time type.
//!
//! ```
//! use bgls_suite::{BackendKind, SimulatorExt};
//! use bgls_suite::circuit::{Circuit, Gate, Operation, Qubit};
//! use bgls_suite::core::{Simulator, SimulatorOptions};
//!
//! let mut bell = Circuit::new();
//! bell.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! bell.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
//! bell.push(Operation::measure(Qubit::range(2), "z").unwrap());
//!
//! for kind in BackendKind::all() {
//!     let sim = Simulator::for_backend(kind, 2, SimulatorOptions::default()).with_seed(3);
//!     let result = sim.run(&bell, 50).unwrap();
//!     let h = result.histogram("z").unwrap();
//!     assert_eq!(h.count_value(0b00) + h.count_value(0b11), 50);
//! }
//! ```

pub use bgls_apps as apps;
pub use bgls_backend as backend;
pub use bgls_circuit as circuit;
pub use bgls_core as core;
pub use bgls_linalg as linalg;
pub use bgls_mps as mps;
pub use bgls_plan as plan;
pub use bgls_stabilizer as stabilizer;
pub use bgls_statevector as statevector;

pub use bgls_backend::{simulator_for, AnyState, BackendKind, SimulatorExt};
pub use bgls_circuit::{optimize, OptimizeConfig, PassPipeline, PassStats, RewriteStats};
pub use bgls_plan::{
    plan_and_expect, plan_and_run, plan_prepared, prepare, CostModel, Deliverable, ExecPath,
    ExecutionPlan, FaultPlan, JobReport, JobStatus, PlannerConfig, PreparedCircuit, ServiceHandle,
    SimRequest, SimulationService, SimulatorPlanExt, Ticket,
};

//! # bgls-suite
//!
//! Umbrella crate for the BGLS reproduction workspace: re-exports every
//! sub-crate so the examples and integration tests can use a single
//! dependency. See `README.md` for the tour and `DESIGN.md` for the
//! paper-to-module map.

pub use bgls_apps as apps;
pub use bgls_circuit as circuit;
pub use bgls_core as core;
pub use bgls_linalg as linalg;
pub use bgls_mps as mps;
pub use bgls_stabilizer as stabilizer;
pub use bgls_statevector as statevector;
